"""The ``fused`` backend: single-pass, scratch-buffered unit kernels.

The reference units are written for clarity: each materializes 20-40
full-array temporaries (``np.where`` chains, repeated ``decompose``,
unconditional special-case handling).  At the 1M-element scale every one of
those temporaries is a fresh 8 MB allocation that round-trips through the
allocator's mmap threshold, which dominates the runtime.  This backend
reimplements the hot datapaths with

- **preallocated scratch buffers** — a grow-only pool of named ``int64`` /
  ``float64`` / ``bool`` working arrays reused across calls, so a steady
  -state op performs no large allocations besides its result;
- **in-place ufuncs** — every field extraction, alignment, and compose step
  writes into scratch via ``out=`` / ``np.copyto(..., where=...)``;
- **single-pass decompose reuse** — sign/exponent/fraction are extracted
  once per operand and reused by every later stage;
- **lazy special-case handling** — a cheap pre-check (an ``exp.max()``
  reduction on the already-extracted exponent fields) skips the NaN/inf
  (and, for the SFUs, zero/negative) branch entirely when no operand needs
  it, which is the overwhelmingly common case for kernel data.  When the
  pre-check fires, the op falls back to patching from (or delegating to)
  the reference unit, so special-value semantics are inherited verbatim.

Every method is bit-identical to the reference backend — asserted over
random and adversarial vectors by :mod:`repro.core.backends.parity` and
``tests/test_backends.py``.

The normalization step replaces the reference adder's float64 ``np.frexp``
MSB extraction (and its overshoot-correction fixup) with an integer-only
smear + popcount when ``numpy.bitwise_count`` is available (NumPy >= 2.0);
older NumPy falls back to the reference method on the scratch buffers.

Instances hold mutable scratch state: one backend belongs to one
:class:`~repro.core.context.ArithmeticContext` and is not thread-safe.
"""

from __future__ import annotations

import numpy as np

from ..adder import DEFAULT_THRESHOLD, _special_add, max_threshold
from ..configurable import MultiplierConfig
from ..floatops import flush_subnormals, format_for_dtype
from ..mitchell import POW2_RANGE, pow2_table
from ..multiplier import _special_results
from ..special import LOG2_COEFFS, RECIPROCAL_COEFFS, RSQRT_COEFFS, _SQRT1_2
from .base import ComputeBackend, _rounding_flags

__all__ = ["FusedBackend", "ScratchPool"]

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


class ScratchPool:
    """Named, grow-only scratch buffers keyed by (name, dtype).

    ``get`` returns a view of the right shape over a flat buffer that is
    reallocated only when a larger size is requested, so repeated calls at
    a kernel's working size are allocation-free.
    """

    def __init__(self):
        self._buffers: dict = {}
        self._high_water = 0

    def get(self, name: str, dtype, shape) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= int(dim)
        key = (name, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 1), dtype=dtype)
            self._buffers[key] = buf
            total = self.nbytes()
            if total > self._high_water:
                self._high_water = total
        return buf[:n].reshape(shape)

    def nbytes(self) -> int:
        """Total bytes currently held (telemetry / debugging)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def high_water_bytes(self) -> int:
        """Peak bytes ever held (not reset by :meth:`release`)."""
        return self._high_water

    def release(self) -> int:
        """Drop every buffer; returns the bytes freed.

        A pool sized by one large batched call would otherwise pin its peak
        footprint for the life of the backend — the runner calls this (via
        :func:`repro.core.backends.release_all_scratch`) between tasks.
        """
        freed = self.nbytes()
        self._buffers.clear()
        return freed

    def trim(self, max_bytes: int) -> int:
        """Drop the largest buffers until at most ``max_bytes`` remain.

        Returns the bytes freed.  ``trim(0)`` is equivalent to
        :meth:`release`.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        freed = 0
        by_size = sorted(
            self._buffers.items(), key=lambda kv: kv[1].nbytes, reverse=True
        )
        held = self.nbytes()
        for key, buf in by_size:
            if held <= max_bytes:
                break
            del self._buffers[key]
            held -= buf.nbytes
            freed += buf.nbytes
        return freed


class FusedBackend(ComputeBackend):
    """Scratch-buffered, lazily-special-cased unit kernels."""

    name = "fused"

    def __init__(self):
        self._scratch = ScratchPool()
        from . import _register_scratch_holder

        _register_scratch_holder(self)

    def scratch_nbytes(self) -> int:
        return self._scratch.nbytes()

    def release_scratch(self) -> int:
        return self._scratch.release()

    # Scratch accessors: int64 working arrays, bool masks, float64 datapath.
    def _i(self, name, shape):
        return self._scratch.get(name, np.int64, shape)

    def _b(self, name, shape):
        return self._scratch.get(name, np.bool_, shape)

    def _f(self, name, shape):
        return self._scratch.get(name, np.float64, shape)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _operands(self, a, b, fmt):
        a = np.asarray(a, dtype=fmt.dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return np.broadcast_arrays(a, b)

    def _fields(self, tag, values, fmt, shape):
        """Extract (bits, exponent, fraction) once into int64 scratch."""
        bits = self._i("bits_" + tag, shape)
        np.copyto(bits, values.view(fmt.uint))
        exp = self._i("exp_" + tag, shape)
        np.right_shift(bits, fmt.mantissa_bits, out=exp)
        np.bitwise_and(exp, fmt.exponent_mask, out=exp)
        frac = self._i("frac_" + tag, shape)
        np.bitwise_and(bits, fmt.mantissa_mask, out=frac)
        return bits, exp, frac

    def _msb_index(self, total, shape):
        """Exact MSB bit index of positive int64 values, in scratch.

        Integer-only: smear the leading one downward, then popcount.  This
        replaces the reference's float64 ``np.frexp`` extraction and its
        round-up overshoot correction.  Overwrites ``total`` is avoided;
        uses the ``smear``/``shreg`` scratch slots.
        """
        smear = self._i("smear", shape)
        np.copyto(smear, total)
        shreg = self._i("shreg", shape)
        if _HAS_BITWISE_COUNT:
            for s in (1, 2, 4, 8, 16, 32):
                np.right_shift(smear, s, out=shreg)
                np.bitwise_or(smear, shreg, out=smear)
            counts = self._scratch.get("popcount", np.uint8, shape)
            np.bitwise_count(smear, out=counts)
            msb = shreg
            np.copyto(msb, counts)
            np.subtract(msb, 1, out=msb)
            return msb
        # NumPy < 2.0: the reference float64 method, on scratch buffers.
        msb = shreg
        np.copyto(msb, np.frexp(smear.astype(np.float64))[1])
        np.subtract(msb, 1, out=msb)
        np.right_shift(smear, msb, out=smear)
        np.subtract(msb, smear == 0, out=msb)
        return msb

    # ------------------------------------------------------------------
    # Threshold adder
    # ------------------------------------------------------------------
    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        if not 1 <= threshold <= max_threshold(dtype):
            raise ValueError(
                f"threshold must be in [1, {max_threshold(dtype)}] for "
                f"{fmt.name}, got {threshold}"
            )
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        p = fmt.mantissa_bits
        guard = threshold
        emask = fmt.exponent_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        has_special = int(exp_a.max()) == emask or int(exp_b.max()) == emask

        # Magnitude comparison: with the sign bit masked off, the IEEE bit
        # pattern orders exactly like (exponent, fraction) lexicographic.
        mag_mask = (1 << ss) - 1
        mag_a = self._i("t1", shape)
        np.bitwise_and(bits_a, mag_mask, out=mag_a)
        mag_b = self._i("t2", shape)
        np.bitwise_and(bits_b, mag_mask, out=mag_b)
        a_larger = self._b("a_larger", shape)
        np.greater_equal(mag_a, mag_b, out=a_larger)

        # Working mantissas with the implicit one, at guard scale; subnormal
        # operands (exp == 0) contribute zero.
        mant_a = mag_a
        np.add(frac_a, np.int64(fmt.implicit_one), out=mant_a)
        np.left_shift(mant_a, guard, out=mant_a)
        zero_a = self._b("zero_a", shape)
        np.equal(exp_a, 0, out=zero_a)
        np.copyto(mant_a, np.int64(0), where=zero_a)
        mant_b = mag_b
        np.add(frac_b, np.int64(fmt.implicit_one), out=mant_b)
        np.left_shift(mant_b, guard, out=mant_b)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.copyto(mant_b, np.int64(0), where=zero_b)

        # Select x = larger magnitude, y = smaller.
        mant_x = self._i("mant_x", shape)
        np.copyto(mant_x, mant_b)
        np.copyto(mant_x, mant_a, where=a_larger)
        mant_y = self._i("mant_y", shape)
        np.copyto(mant_y, mant_a)
        np.copyto(mant_y, mant_b, where=a_larger)
        exp_x = self._i("exp_x", shape)
        np.maximum(exp_a, exp_b, out=exp_x)
        d = self._i("d", shape)
        np.minimum(exp_a, exp_b, out=d)
        np.subtract(exp_x, d, out=d)

        sign_a = bits_a
        np.right_shift(bits_a, ss, out=sign_a)
        sign_b = bits_b
        np.right_shift(bits_b, ss, out=sign_b)
        effective_sub = self._b("eff_sub", shape)
        np.not_equal(sign_a, sign_b, out=effective_sub)
        sign_z = self._i("sign_z", shape)
        np.copyto(sign_z, sign_b)
        np.copyto(sign_z, sign_a, where=a_larger)

        # Align y: shift right by d, keep only the top TH fraction bits at
        # the larger-exponent scale, zero entirely beyond the threshold.
        shift = self._i("shift", shape)
        np.minimum(d, p + guard + 1, out=shift)
        np.right_shift(mant_y, shift, out=mant_y)
        keep_cut = p + guard - threshold
        if keep_cut > 0:
            np.bitwise_and(mant_y, ~np.int64((1 << keep_cut) - 1), out=mant_y)
        far = self._b("far", shape)
        np.greater(d, threshold, out=far)
        np.copyto(mant_y, np.int64(0), where=far)

        total = self._i("total", shape)
        np.add(mant_x, mant_y, out=total)
        tsub = self._i("tsub", shape)
        np.subtract(mant_x, mant_y, out=tsub)
        np.copyto(total, tsub, where=effective_sub)
        np.abs(total, out=total)

        zero_total = self._b("zero_total", shape)
        np.equal(total, 0, out=zero_total)
        np.copyto(total, np.int64(1), where=zero_total)

        msb = self._msb_index(total, shape)
        norm_shift = msb
        np.subtract(msb, p + guard, out=norm_shift)
        exp_z = exp_x
        np.add(exp_x, norm_shift, out=exp_z)

        left = self._i("left", shape)
        np.negative(norm_shift, out=left)
        np.maximum(left, 0, out=left)
        right = self._i("right", shape)
        np.maximum(norm_shift, 0, out=right)
        np.left_shift(total, left, out=total)
        np.right_shift(total, right, out=total)
        frac_z = total
        np.right_shift(total, guard, out=frac_z)
        np.bitwise_and(frac_z, fmt.mantissa_mask, out=frac_z)

        overflow = self._b("overflow", shape)
        np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        np.logical_or(underflow, zero_total, out=underflow)

        # Compose in the integer domain; the sign part doubles as the
        # signed-zero pattern for underflow.
        np.clip(exp_z, 0, emask, out=exp_z)
        sign_part = self._i("sign_part", shape)
        np.left_shift(sign_z, ss, out=sign_part)
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, sign_part, out=bits_out)
        np.bitwise_or(bits_out, frac_z, out=bits_out)

        if bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(sign_part, np.int64(emask) << p, out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, sign_part, where=underflow)
        # Exact cancellation yields +0 as in IEEE round-to-nearest.
        np.copyto(bits_out, np.int64(0), where=zero_total)

        result = bits_out.astype(fmt.uint).view(fmt.dtype)

        if has_special:
            special_mask, special_vals = _special_add(a, b, fmt)
            np.copyto(result, special_vals, where=special_mask)
        return result

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add(a, -b, threshold=threshold, dtype=dtype)

    # ------------------------------------------------------------------
    # Batched threshold adder: one decompose, N thresholds
    # ------------------------------------------------------------------
    # The shared head runs the config-invariant work once at a *common*
    # guard width G = max(thresholds): field extraction, magnitude compare,
    # operand select, alignment, and the effective-operation sign.  Working
    # at guard G instead of the per-config guard TH only appends G - TH
    # trailing zero bits to every intermediate (the alignment shift and the
    # keep-mask cut ``p + G - TH`` select the same surviving bits), so each
    # per-config tail is bit-identical to the scalar kernel at guard TH.
    #
    # The tail exploits two identities to stay lean:
    #
    # - ``mant_x +/- (y & keep)`` == ``base -/+ (y & low)`` with the shared
    #   ``base = mant_x +/- y``, so only the *discarded* low bits are
    #   re-masked per config.  Lanes beyond the threshold (d > TH) need no
    #   separate "far" zeroing: the aligned y is already below the keep cut.
    # - when ``p + G + 2 <= 53`` (always true for binary32/16) the int64
    #   total converts to float64 *exactly*, so the float64 bit pattern IS
    #   the normalized result: its exponent field is the MSB index and its
    #   top fraction bits are the truncated mantissa — normalization,
    #   including the left-shift cancellation case, collapses into one
    #   conversion plus two shifts.  binary64 totals reach 62 bits, so that
    #   dtype keeps the exact integer-domain normalize instead.

    def imprecise_add_batch(self, a, b, thresholds,
                            dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        thresholds = [int(th) for th in thresholds]
        if not thresholds:
            return []
        limit = max_threshold(dtype)
        for th in thresholds:
            if not 1 <= th <= limit:
                raise ValueError(
                    f"threshold must be in [1, {limit}] for {fmt.name}, "
                    f"got {th}"
                )
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        guard = max(thresholds)
        head = self._add_batch_head(a, b, fmt, shape, guard)
        exact53 = fmt.mantissa_bits + guard + 2 <= 53
        tail = self._add_batch_tail_exact if exact53 else self._add_batch_tail_int
        results = [tail(fmt, shape, guard, th, head) for th in thresholds]
        special = head["special"]
        if special is not None:
            special_mask, special_vals = special
            for result in results:
                np.copyto(result, special_vals, where=special_mask)
        return results

    def imprecise_subtract_batch(self, a, b, thresholds,
                                 dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add_batch(a, -b, thresholds, dtype=dtype)

    def imprecise_fma_batch(self, a, b, c, thresholds,
                            dtype=np.float32) -> list:
        # The Table-1 product has no batch parameter: compute it once.
        product = self.imprecise_multiply(a, b, dtype=dtype)
        return self.imprecise_add_batch(product, c, thresholds, dtype=dtype)

    def _add_batch_head(self, a, b, fmt, shape, guard: int) -> dict:
        """Config-invariant adder work at common guard ``G`` (see above)."""
        p = fmt.mantissa_bits
        emask = fmt.exponent_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        special = None
        if int(exp_a.max()) == emask or int(exp_b.max()) == emask:
            # NaN/inf handling is config-invariant: one mask for the batch.
            special = _special_add(a, b, fmt)

        mag_mask = (1 << ss) - 1
        mag_a = self._i("t1", shape)
        np.bitwise_and(bits_a, mag_mask, out=mag_a)
        mag_b = self._i("t2", shape)
        np.bitwise_and(bits_b, mag_mask, out=mag_b)
        a_larger = self._b("a_larger", shape)
        np.greater_equal(mag_a, mag_b, out=a_larger)

        mant_a = mag_a
        np.add(frac_a, np.int64(fmt.implicit_one), out=mant_a)
        np.left_shift(mant_a, guard, out=mant_a)
        zero_a = self._b("zero_a", shape)
        np.equal(exp_a, 0, out=zero_a)
        np.copyto(mant_a, np.int64(0), where=zero_a)
        mant_b = mag_b
        np.add(frac_b, np.int64(fmt.implicit_one), out=mant_b)
        np.left_shift(mant_b, guard, out=mant_b)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.copyto(mant_b, np.int64(0), where=zero_b)

        mant_x = self._i("mant_x", shape)
        np.copyto(mant_x, mant_b)
        np.copyto(mant_x, mant_a, where=a_larger)
        y = self._i("bt_y", shape)
        np.copyto(y, mant_a)
        np.copyto(y, mant_b, where=a_larger)
        exp_x = self._i("exp_x", shape)
        np.maximum(exp_a, exp_b, out=exp_x)
        d = self._i("d", shape)
        np.minimum(exp_a, exp_b, out=d)
        np.subtract(exp_x, d, out=d)

        sign_a = bits_a
        np.right_shift(bits_a, ss, out=sign_a)
        sign_b = bits_b
        np.right_shift(bits_b, ss, out=sign_b)
        sign_z = self._i("sign_z", shape)
        np.copyto(sign_z, sign_b)
        np.copyto(sign_z, sign_a, where=a_larger)
        sign_part = self._i("bt_sign", shape)
        np.left_shift(sign_z, ss, out=sign_part)

        # s = +1 for effective addition, -1 for effective subtraction.
        eff_sub = self._b("eff_sub", shape)
        np.not_equal(sign_a, sign_b, out=eff_sub)
        s = self._i("bt_s", shape)
        np.multiply(eff_sub, np.int64(-2), out=s)
        np.add(s, np.int64(1), out=s)

        # Align y once at guard scale (the per-config keep-mask runs later).
        shift = self._i("shift", shape)
        np.minimum(d, p + guard + 1, out=shift)
        np.right_shift(y, shift, out=y)

        # base = mant_x + s*y: the full-precision total at guard G.  Each
        # tail recovers its thresholded total as base - s*(y & low_mask).
        base = self._i("bt_base", shape)
        np.multiply(y, s, out=base)
        np.add(base, mant_x, out=base)

        exact53 = p + guard + 2 <= 53
        # Offset folding the exponent bias of the float64 view (exact path)
        # or the MSB reference point (integer path) into one shared add.
        offset = (1023 + p + guard) if exact53 else (p + guard)
        expk = self._i("bt_expk", shape)
        np.subtract(exp_x, np.int64(offset), out=expk)
        adj = None
        if exact53:
            # bits_out = (f64_bits >> (52-p)) + adj composes sign, exponent
            # and fraction in two passes (no carries: in-range exponents
            # keep the fraction's 23 low bits clear of the sign bit).
            adj = self._i("bt_adj", shape)
            np.multiply(expk, np.int64(1) << p, out=adj)
            np.add(adj, sign_part, out=adj)

        # Overflow needs exp_z > max_exponent and exp_z <= exp_x + 1.
        can_over = int(exp_x.max()) >= fmt.max_exponent
        return {
            "y": y, "s": s, "base": base, "sign_part": sign_part,
            "expk": expk, "adj": adj, "special": special,
            "can_over": can_over,
        }

    def _add_batch_tail_exact(self, fmt, shape, guard: int, threshold: int,
                              head: dict) -> np.ndarray:
        """Per-config fixup via the exact float64-conversion normalize."""
        p = fmt.mantissa_bits
        cut = p + guard - threshold
        low = self._i("bt_low", shape)
        np.bitwise_and(head["y"], np.int64((1 << cut) - 1), out=low)
        np.multiply(low, head["s"], out=low)
        total = self._i("bt_total", shape)
        np.subtract(head["base"], low, out=total)
        zero_total = self._b("zero_total", shape)
        np.equal(total, 0, out=zero_total)

        # total < 2^52 converts exactly: exponent field = MSB index + 1023,
        # fraction field = the normalized mantissa, already truncated when
        # we keep only its top p bits.
        ft = self._f("bt_ft", shape)
        np.copyto(ft, total)
        fbits = ft.view(np.int64)
        bits_out = self._i("bt_bits", shape)
        np.right_shift(fbits, 52 - p, out=bits_out)
        np.add(bits_out, head["adj"], out=bits_out)

        exp_z = self._i("bt_e", shape)
        np.right_shift(fbits, 52, out=exp_z)
        np.add(exp_z, head["expk"], out=exp_z)

        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        if head["can_over"]:
            overflow = self._b("overflow", shape)
            np.greater(exp_z, fmt.max_exponent, out=overflow)
            if bool(overflow.any()):
                inf_bits = self._i("inf_bits", shape)
                np.bitwise_or(head["sign_part"],
                              np.int64(fmt.exponent_mask) << p, out=inf_bits)
                np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, head["sign_part"], where=underflow)
        # Exact cancellation yields +0 as in IEEE round-to-nearest.
        np.copyto(bits_out, np.int64(0), where=zero_total)
        return bits_out.astype(fmt.uint).view(fmt.dtype)

    def _add_batch_tail_int(self, fmt, shape, guard: int, threshold: int,
                            head: dict) -> np.ndarray:
        """Per-config fixup with the exact integer normalize (binary64)."""
        p = fmt.mantissa_bits
        emask = fmt.exponent_mask
        cut = p + guard - threshold
        low = self._i("bt_low", shape)
        np.bitwise_and(head["y"], np.int64((1 << cut) - 1), out=low)
        np.multiply(low, head["s"], out=low)
        total = self._i("bt_total", shape)
        np.subtract(head["base"], low, out=total)
        zero_total = self._b("zero_total", shape)
        np.equal(total, 0, out=zero_total)
        np.copyto(total, np.int64(1), where=zero_total)

        msb = self._msb_index(total, shape)
        exp_z = self._i("bt_e", shape)
        np.add(head["expk"], msb, out=exp_z)
        norm_shift = msb
        np.subtract(msb, p + guard, out=norm_shift)

        left = self._i("bt_l", shape)
        np.negative(norm_shift, out=left)
        np.maximum(left, 0, out=left)
        right = norm_shift
        np.maximum(norm_shift, 0, out=right)
        np.left_shift(total, left, out=total)
        np.right_shift(total, right, out=total)
        np.right_shift(total, guard, out=total)
        np.bitwise_and(total, fmt.mantissa_mask, out=total)

        overflow = self._b("overflow", shape)
        np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        np.logical_or(underflow, zero_total, out=underflow)

        np.clip(exp_z, 0, emask, out=exp_z)
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, head["sign_part"], out=bits_out)
        np.bitwise_or(bits_out, total, out=bits_out)

        if bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(head["sign_part"], np.int64(emask) << p,
                          out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, head["sign_part"], where=underflow)
        np.copyto(bits_out, np.int64(0), where=zero_total)
        return bits_out.astype(fmt.uint).view(fmt.dtype)

    # ------------------------------------------------------------------
    # Table-1 multiplier
    # ------------------------------------------------------------------
    def _mul_special(self, a, b, exp_a, frac_a, exp_b, frac_b, sign_z, fmt):
        """Reference NaN/inf/zero (mask, values) for a multiplication.

        Computed on the rare special branch only, so plain allocating NumPy
        is fine; mirrors the reference's subnormal-flush of the operands
        feeding :func:`_special_results`.
        """
        zero = np.array(0.0, fmt.dtype)
        a_eff = np.where((exp_a == 0) & (frac_a != 0), zero, a)
        b_eff = np.where((exp_b == 0) & (frac_b != 0), zero, b)
        return _special_results(a_eff, b_eff, sign_z, fmt)

    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        p = fmt.mantissa_bits
        emask = fmt.exponent_mask
        fmask = fmt.mantissa_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        has_special = int(exp_a.max()) == emask or int(exp_b.max()) == emask

        sign_z = self._i("sign_z", shape)
        np.right_shift(bits_a, ss, out=bits_a)
        np.right_shift(bits_b, ss, out=bits_b)
        np.bitwise_xor(bits_a, bits_b, out=sign_z)

        special = None
        if has_special:
            # NaN/inf lanes run the integer datapath harmlessly (their
            # saturated exponents land in the overflow patch) and are then
            # overwritten with the reference special results.
            special = self._mul_special(a, b, exp_a, frac_a, exp_b, frac_b,
                                        sign_z, fmt)

        # Mantissa datapath: 1 + Ma + Mb, halved on carry (LSB truncated).
        frac_sum = frac_a
        np.add(frac_a, frac_b, out=frac_sum)
        carry = frac_b
        np.right_shift(frac_sum, p, out=carry)
        halved = self._i("halved", shape)
        np.bitwise_and(frac_sum, fmask, out=halved)
        np.right_shift(halved, 1, out=halved)
        carried = self._b("carried", shape)
        np.not_equal(carry, 0, out=carried)
        frac_z = frac_sum
        np.copyto(frac_z, halved, where=carried)
        np.bitwise_and(frac_z, fmask, out=frac_z)

        exp_z = self._i("exp_z", shape)
        np.add(exp_a, exp_b, out=exp_z)
        np.subtract(exp_z, fmt.bias, out=exp_z)
        np.add(exp_z, carry, out=exp_z)

        overflow = self._b("overflow", shape)
        np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        # Zero or subnormal operand (exp field 0) makes the product zero.
        zero_any = self._b("zero_any", shape)
        np.equal(exp_a, 0, out=zero_any)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.logical_or(zero_any, zero_b, out=zero_any)

        np.clip(exp_z, 0, emask, out=exp_z)
        sign_part = self._i("sign_part", shape)
        np.left_shift(sign_z, ss, out=sign_part)
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, sign_part, out=bits_out)
        np.bitwise_or(bits_out, frac_z, out=bits_out)

        if bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(sign_part, np.int64(emask) << p, out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, sign_part, where=underflow)
        np.copyto(bits_out, sign_part, where=zero_any)
        result = bits_out.astype(fmt.uint).view(fmt.dtype)
        if special is not None:
            special_mask, special_vals = special
            np.copyto(result, special_vals, where=special_mask)
        return result

    # ------------------------------------------------------------------
    # Mitchell (accuracy-configurable) multiplier
    # ------------------------------------------------------------------
    def _mul_batch_head(self, a, b, fmt, shape) -> dict:
        """Config-invariant multiplier work: fields, sign, exponent sum."""
        emask = fmt.exponent_mask
        ss = fmt.sign_shift
        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        has_special = int(exp_a.max()) == emask or int(exp_b.max()) == emask

        sign_z = self._i("sign_z", shape)
        np.right_shift(bits_a, ss, out=bits_a)
        np.right_shift(bits_b, ss, out=bits_b)
        np.bitwise_xor(bits_a, bits_b, out=sign_z)
        special = None
        if has_special:
            special = self._mul_special(a, b, exp_a, frac_a, exp_b, frac_b,
                                        sign_z, fmt)
        sign_part = self._i("bm_sign", shape)
        np.left_shift(sign_z, ss, out=sign_part)

        esum = self._i("bm_esum", shape)
        np.add(exp_a, exp_b, out=esum)
        np.subtract(esum, np.int64(fmt.bias), out=esum)
        zero_any = self._b("bm_zero", shape)
        np.equal(exp_a, 0, out=zero_any)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.logical_or(zero_any, zero_b, out=zero_any)
        return {
            "frac_a": frac_a, "frac_b": frac_b, "esum": esum,
            "sign_part": sign_part, "zero_any": zero_any, "special": special,
            # Range prechecks: amortized over every config in the batch,
            # they let the tails skip whole overflow/underflow/zero passes
            # when no lane can need them (the overwhelmingly common case).
            "esum_lo": int(esum.min()), "esum_hi": int(esum.max()),
            "has_zero": bool(zero_any.any()),
        }

    def _mitchell_log_fields(self, fmt, shape, head: dict) -> None:
        """Config-invariant log-domain decode fields, computed on first use.

        Operand truncation clears only fraction bits *below* the leading
        one (or the whole fraction), so each operand's MSB index — and with
        it the ``2^{-msb}`` normalizer and the ``2^{k1+k2}`` decode scale —
        is shared by every configuration in a batch; zero-after-truncation
        reduces to an integer compare against the MSB index.  The powers of
        two come from the shared :func:`~repro.core.mitchell.pow2_table`.
        """
        if "msb_a" in head:
            return
        p = fmt.mantissa_bits
        table = pow2_table()
        idx = self._i("bm_p2idx", shape)
        for tag in ("a", "b"):
            frac = head["frac_" + tag]
            safe = self._i("bm_safe", shape)
            np.maximum(frac, np.int64(1), out=safe)
            msb = self._i("bm_msb_" + tag, shape)
            np.copyto(msb, self._msb_index(safe, shape))
            # A zero fraction marks with msb = -1: below every truncation.
            zero = self._b("bm_fz", shape)
            np.equal(frac, 0, out=zero)
            np.copyto(msb, np.int64(-1), where=zero)
            inv = self._f("bm_inv_" + tag, shape)
            np.subtract(np.int64(POW2_RANGE), msb, out=idx)
            np.take(table, idx, out=inv)
            head["msb_" + tag] = msb
            head["inv_" + tag] = inv
        scale = self._f("bm_scale", shape)
        np.add(head["msb_a"], head["msb_b"], out=idx)
        np.subtract(idx, np.int64(2 * p - POW2_RANGE), out=idx)
        np.take(table, idx, out=scale)
        scale2 = self._f("bm_scale2", shape)
        np.multiply(scale, 2.0, out=scale2)
        min_msb = self._i("bm_minmsb", shape)
        np.minimum(head["msb_a"], head["msb_b"], out=min_msb)
        head["min_msb"] = min_msb
        head["log_scale"] = scale
        head["log_scale2"] = scale2

    def _mitchell_tail(self, fmt, shape, config: MultiplierConfig,
                       head: dict) -> np.ndarray:
        """One Mitchell configuration over already-extracted fields."""
        p = fmt.mantissa_bits
        emask = fmt.exponent_mask
        scale = float(fmt.implicit_one)
        inv_scale = 1.0 / scale  # exact: scale is a power of two
        sign_part = head["sign_part"]

        # Operand truncation into per-config scratch: the head's fraction
        # fields stay pristine for the other configs in the batch.
        if config.truncation:
            cut = np.int64(~((1 << config.truncation) - 1) & fmt.mantissa_mask)
            fa = self._i("bm_fa", shape)
            np.bitwise_and(head["frac_a"], cut, out=fa)
            fb = self._i("bm_fb", shape)
            np.bitwise_and(head["frac_b"], cut, out=fb)
        else:
            fa, fb = head["frac_a"], head["frac_b"]

        # Exact dyadic mantissa fractions in the float64 datapath.
        ma = self._f("bm_ma", shape)
        np.multiply(fa, inv_scale, out=ma)
        mb = self._f("bm_mb", shape)
        np.multiply(fb, inv_scale, out=mb)

        if config.path == "log":
            # MA of (1+Ma)(1+Mb): both operands are in [1, 2), so the log
            # decomposition is k = 0, x = M exactly and the product reduces
            # to 1 + Ma + Mb (or 2 (Ma + Mb) past the carry) — the same
            # dyadic float64 values mitchell_mantissa_product computes.
            x_sum = ma
            np.add(ma, mb, out=x_sum)
            mant_product = self._f("bm_mant", shape)
            np.add(x_sum, 1.0, out=mant_product)
            doubled = mb
            np.multiply(x_sum, 2.0, out=doubled)
            carried = self._b("bm_carried", shape)
            np.greater_equal(x_sum, 1.0, out=carried)
            np.copyto(mant_product, doubled, where=carried)
        else:
            # Cross term MA(Ma, Mb) with the decode scales hoisted to the
            # head: per config only the x-fraction alignment and the
            # piecewise decode remain, and every multiply is by an exact
            # power of two — the same float64 values, in the same order, as
            # mitchell_mantissa_product.
            self._mitchell_log_fields(fmt, shape, head)
            x1 = self._f("bm_x1", shape)
            np.multiply(fa, head["inv_a"], out=x1)
            np.subtract(x1, 1.0, out=x1)
            x2 = self._f("bm_x2", shape)
            np.multiply(fb, head["inv_b"], out=x2)
            np.subtract(x2, 1.0, out=x2)
            x_sum = x1
            np.add(x1, x2, out=x_sum)
            cross = self._f("bm_cross", shape)
            np.add(x_sum, 1.0, out=cross)
            np.multiply(cross, head["log_scale"], out=cross)
            doubled = x2
            np.multiply(x_sum, head["log_scale2"], out=doubled)
            carried = self._b("bm_carried", shape)
            np.greater_equal(x_sum, 1.0, out=carried)
            np.copyto(cross, doubled, where=carried)
            # Zero cross where either fraction truncates away entirely.
            zc = self._b("bm_zc", shape)
            np.less(head["min_msb"], np.int64(config.truncation), out=zc)
            np.copyto(cross, 0.0, where=zc)
            mant_product = self._f("bm_mant", shape)
            np.add(ma, 1.0, out=mant_product)
            np.add(mant_product, mb, out=mant_product)
            np.add(mant_product, cross, out=mant_product)

        carry = self._b("bm_carry", shape)
        np.greater_equal(mant_product, 2.0, out=carry)
        mant_norm = mant_product
        halved = self._f("bm_half", shape)
        np.multiply(mant_product, 0.5, out=halved)
        np.copyto(mant_norm, halved, where=carry)

        # mant_norm is in [1, 2) exactly, so (mant_norm - 1) * 2^p is an
        # exact non-negative float64 below 2^p: the int cast truncates like
        # the reference's floor+clip without either pass.
        np.subtract(mant_norm, 1.0, out=mant_norm)
        np.multiply(mant_norm, scale, out=mant_norm)
        frac_z = self._i("bm_frz", shape)
        np.copyto(frac_z, mant_norm, casting="unsafe")

        exp_z = self._i("bm_e", shape)
        np.add(head["esum"], carry, out=exp_z)

        # The head's exponent-range prechecks bound esum + carry, so the
        # overflow/underflow passes run only when some lane can need them.
        may_overflow = head["esum_hi"] + 1 > fmt.max_exponent
        may_underflow = head["esum_lo"] < 1
        overflow = None
        if may_overflow:
            overflow = self._b("overflow", shape)
            np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = None
        if may_underflow:
            underflow = self._b("underflow", shape)
            np.less(exp_z, 1, out=underflow)

        # Out-of-range exponents compose garbage bits here, but every such
        # lane is overwritten by the overflow/underflow masks below.
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, sign_part, out=bits_out)
        np.bitwise_or(bits_out, frac_z, out=bits_out)

        if overflow is not None and bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(sign_part, np.int64(emask) << p, out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        if underflow is not None:
            np.copyto(bits_out, sign_part, where=underflow)
        if head["has_zero"]:
            np.copyto(bits_out, sign_part, where=head["zero_any"])
        result = bits_out.astype(fmt.uint).view(fmt.dtype)
        if head["special"] is not None:
            special_mask, special_vals = head["special"]
            np.copyto(result, special_vals, where=special_mask)
        return result

    def _check_mitchell(self, config: MultiplierConfig, fmt) -> None:
        if config.truncation > fmt.mantissa_bits:
            raise ValueError(
                f"truncation {config.truncation} exceeds the "
                f"{fmt.mantissa_bits}-bit mantissa of {fmt.name}"
            )

    #: Element-block width for the Mitchell path.  Every configuration
    #: runs over one block before the next block starts, so the ~20
    #: scratch passes per config hit cache-resident working arrays instead
    #: of streaming full-size buffers through memory on every pass
    #: (measured ~1.6x at 1M elements on top of the hoisted log fields).
    MITCHELL_BLOCK = 1 << 15

    def configurable_multiply(self, a, b, config: MultiplierConfig,
                              dtype=np.float32) -> np.ndarray:
        return self._mitchell_blocked(a, b, [config], dtype)[0]

    def configurable_multiply_batch(self, a, b, configs,
                                    dtype=np.float32) -> list:
        configs = list(configs)
        if not configs:
            return []
        return self._mitchell_blocked(a, b, configs, dtype)

    def _mitchell_blocked(self, a, b, configs, dtype) -> list:
        """Head + per-config tails over cache-sized element blocks."""
        fmt = format_for_dtype(dtype)
        for cfg in configs:
            self._check_mitchell(cfg, fmt)
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        n = int(a.size)
        block = self.MITCHELL_BLOCK
        if n <= block:
            head = self._mul_batch_head(a, b, fmt, shape)
            return [self._mitchell_tail(fmt, shape, cfg, head)
                    for cfg in configs]
        flat_a = np.ascontiguousarray(a.reshape(-1))
        flat_b = np.ascontiguousarray(b.reshape(-1))
        outs = [np.empty(n, dtype=fmt.dtype) for _ in configs]
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            ta = flat_a[lo:hi]
            tb = flat_b[lo:hi]
            head = self._mul_batch_head(ta, tb, fmt, ta.shape)
            for out, cfg in zip(outs, configs):
                out[lo:hi] = self._mitchell_tail(fmt, ta.shape, cfg, head)
        return [out.reshape(shape) for out in outs]

    # ------------------------------------------------------------------
    # bt_N truncation baseline
    # ------------------------------------------------------------------
    def _check_bt(self, truncation: int, fmt) -> None:
        if not 0 <= truncation <= fmt.mantissa_bits:
            raise ValueError(
                f"truncation must be in [0, {fmt.mantissa_bits}], "
                f"got {truncation}"
            )

    def _bt_head(self, a, b, fmt, shape) -> dict:
        """Config-invariant ``bt_N`` work: subnormal-flushed operand bits.

        Per-operand special masks (NaN / inf) are kept so each tail can
        pass those lanes through the mantissa reduction unreduced — the
        exact semantics of the reference ``round_mantissa``.  The float64
        product then runs on full arrays with the same element values the
        reference sees, which is what keeps NaN payload propagation (an
        array-shape-sensitive NumPy detail) bit-identical.
        """
        emask = fmt.exponent_mask
        ss = fmt.sign_shift
        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        spec_a = spec_b = None
        if int(exp_a.max()) == emask:
            spec_a = self._b("bt_spec_a", shape)
            np.equal(exp_a, emask, out=spec_a)
        if int(exp_b.max()) == emask:
            spec_b = self._b("bt_spec_b", shape)
            np.equal(exp_b, emask, out=spec_b)

        # Flush subnormal operands to the signed zero pattern.
        sign_mask = np.int64(1) << ss
        for bits, exp in ((bits_a, exp_a), (bits_b, exp_b)):
            sub = self._b("sub", shape)
            np.equal(exp, 0, out=sub)
            signed_zero = self._i("signed_zero", shape)
            np.bitwise_and(bits, sign_mask, out=signed_zero)
            np.copyto(bits, signed_zero, where=sub)
        return {"bits_a": bits_a, "bits_b": bits_b,
                "spec_a": spec_a, "spec_b": spec_b}

    def _bt_tail(self, fmt, shape, truncation: int, rounding: bool,
                 head: dict) -> np.ndarray:
        """One ``bt_N`` reduction over already-flushed operand bits."""
        ra = self._i("btm_a", shape)
        np.copyto(ra, head["bits_a"])
        rb = self._i("btm_b", shape)
        np.copyto(rb, head["bits_b"])
        if truncation:
            # In the signed-int64 domain ~((1<<t)-1) keeps every high bit
            # (including the sign bit for binary64 patterns), so no width
            # clamp is needed.
            mask = np.int64(~((1 << truncation) - 1))
            for bits, spec, orig in ((ra, head["spec_a"], head["bits_a"]),
                                     (rb, head["spec_b"], head["bits_b"])):
                if rounding:
                    np.add(bits, np.int64(1 << (truncation - 1)), out=bits)
                np.bitwise_and(bits, mask, out=bits)
                if spec is not None:
                    # NaN / inf operands pass through unreduced, exactly as
                    # the reference round_mantissa preserves them.
                    np.copyto(bits, orig, where=spec)

        # Exact float64 product of the reduced operands, then result flush.
        fa = self._f("fa", shape)
        np.copyto(fa, ra.astype(fmt.uint).view(fmt.dtype))
        fb = self._f("fb", shape)
        np.copyto(fb, rb.astype(fmt.uint).view(fmt.dtype))
        np.multiply(fa, fb, out=fa)
        product = fa.astype(fmt.dtype)
        return flush_subnormals(product, fmt)

    def truncated_multiply(self, a, b, truncation: int = 0, dtype=np.float32,
                           rounding: bool = True) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        self._check_bt(truncation, fmt)
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        head = self._bt_head(a, b, fmt, shape)
        return self._bt_tail(fmt, shape, truncation, bool(rounding), head)

    def truncated_multiply_batch(self, a, b, truncations, dtype=np.float32,
                                 rounding=True) -> list:
        fmt = format_for_dtype(dtype)
        truncations = list(truncations)
        roundings = _rounding_flags(rounding, len(truncations))
        for t in truncations:
            self._check_bt(t, fmt)
        if not truncations:
            return []
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        head = self._bt_head(a, b, fmt, shape)
        return [
            self._bt_tail(fmt, shape, t, r, head)
            for t, r in zip(truncations, roundings)
        ]

    # ------------------------------------------------------------------
    # FMA: fused multiply feeding the fused adder
    # ------------------------------------------------------------------
    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        product = self.imprecise_multiply(a, b, dtype=dtype)
        return self.imprecise_add(product, c, threshold=threshold, dtype=dtype)

    # ------------------------------------------------------------------
    # Linear SFUs
    # ------------------------------------------------------------------
    def _sfu_fields(self, x, fmt, signed_ok: bool):
        """Decompose an SFU operand; None signals the reference fallback.

        Returns ``(exp, frac, negative_or_None, patch_or_None)``.  The
        fast path runs on every lane; ``patch`` marks the lanes the caller
        must overwrite from the reference unit (zero / inf / NaN /
        subnormal, plus negatives unless ``signed_ok``).  Those lanes are
        neutralized to 1.0 here so the fast path stays warning-free.
        ``None`` signals the wholesale reference fallback (0-d input, or
        every lane needs patching anyway).
        """
        if x.ndim == 0:
            return None
        shape = x.shape
        bits = self._i("bits_a", shape)
        np.copyto(bits, x.view(fmt.uint))
        exp = self._i("exp_a", shape)
        np.right_shift(bits, fmt.mantissa_bits, out=exp)
        np.bitwise_and(exp, fmt.exponent_mask, out=exp)
        sign = self._i("sign_a", shape)
        np.right_shift(bits, fmt.sign_shift, out=sign)
        frac = self._i("frac_a", shape)
        np.bitwise_and(bits, fmt.mantissa_mask, out=frac)

        patch = self._b("sfu_patch", shape)
        np.equal(exp, fmt.exponent_mask, out=patch)
        sub = self._b("sfu_sub", shape)
        np.equal(exp, 0, out=sub)
        np.logical_or(patch, sub, out=patch)
        negative = None
        if signed_ok:
            negative = self._b("negative", shape)
            np.not_equal(sign, 0, out=negative)
        else:
            neg = self._b("negative", shape)
            np.not_equal(sign, 0, out=neg)
            np.logical_or(patch, neg, out=patch)
        if not bool(patch.any()):
            return exp, frac, negative, None
        if bool(patch.all()):
            return None
        np.copyto(exp, np.int64(fmt.bias), where=patch)
        np.copyto(frac, np.int64(0), where=patch)
        return exp, frac, negative, patch

    def _mantissa_and_exponent(self, exp, frac, fmt, shape):
        """float64 mantissa 1+M in [1, 2) and unbiased exponent, in scratch."""
        mant = self._f("mant", shape)
        np.divide(frac, float(fmt.implicit_one), out=mant)
        np.add(mant, 1.0, out=mant)
        e = self._i("e", shape)
        np.subtract(exp, fmt.bias, out=e)
        return mant, e

    def _quantize(self, values, fmt):
        out = values.astype(fmt.dtype)
        return flush_subnormals(out, fmt)

    def imprecise_reciprocal(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=True)
        if fields is None:
            return ComputeBackend.imprecise_reciprocal(self, x, dtype=dtype)
        exp, frac, negative, patch = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        xr = mant
        np.multiply(mant, 0.5, out=xr)
        c0, c1 = RECIPROCAL_COEFFS
        approx = self._f("approx", shape)
        np.multiply(xr, c1, out=approx)
        np.add(approx, c0, out=approx)
        np.add(e, 1, out=e)
        np.negative(e, out=e)
        scale = self._f("scale", shape)
        np.copyto(scale, e)
        np.exp2(scale, out=scale)
        np.multiply(approx, scale, out=approx)
        negated = self._f("negated", shape)
        np.negative(approx, out=negated)
        np.copyto(approx, negated, where=negative)
        result = self._quantize(approx, fmt)
        if patch is not None:
            result[patch] = ComputeBackend.imprecise_reciprocal(
                self, x[patch], dtype=dtype)
        return result

    def imprecise_rsqrt(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=False)
        if fields is None:
            return ComputeBackend.imprecise_rsqrt(self, x, dtype=dtype)
        exp, frac, _, patch = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        xr = mant
        np.multiply(mant, 0.5, out=xr)
        c0, c1 = RSQRT_COEFFS
        lin = self._f("approx", shape)
        np.multiply(xr, c1, out=lin)
        np.add(lin, c0, out=lin)
        # e1 = e + 1 = 2q + r with r in {0, 1}
        e1 = e
        np.add(e1, 1, out=e1)
        q = self._i("q", shape)
        np.floor_divide(e1, 2, out=q)
        r = self._i("r", shape)
        np.left_shift(q, 1, out=r)
        np.subtract(e1, r, out=r)
        scale = self._f("scale", shape)
        nq = self._i("shift", shape)
        np.negative(q, out=nq)
        np.copyto(scale, nq)
        np.exp2(scale, out=scale)
        np.multiply(lin, scale, out=lin)
        odd = self._b("odd", shape)
        np.equal(r, 1, out=odd)
        factor = self._f("factor", shape)
        np.copyto(factor, 1.0)
        np.copyto(factor, _SQRT1_2, where=odd)
        np.multiply(lin, factor, out=lin)
        result = self._quantize(lin, fmt)
        if patch is not None:
            result[patch] = ComputeBackend.imprecise_rsqrt(
                self, x[patch], dtype=dtype)
        return result

    def imprecise_sqrt(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=False)
        if fields is None:
            return ComputeBackend.imprecise_sqrt(self, x, dtype=dtype)
        exp, frac, _, patch = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        q = self._i("q", shape)
        np.floor_divide(e, 2, out=q)
        r = self._i("r", shape)
        np.left_shift(q, 1, out=r)
        np.subtract(e, r, out=r)
        # xr = mant * 2^r * 0.25 in [0.25, 1)
        scale = self._f("scale", shape)
        np.copyto(scale, r)
        np.exp2(scale, out=scale)
        xr = mant
        np.multiply(mant, scale, out=xr)
        np.multiply(xr, 0.25, out=xr)
        c0, c1 = RSQRT_COEFFS
        lin = self._f("approx", shape)
        np.multiply(xr, c1, out=lin)
        np.add(lin, c0, out=lin)
        np.multiply(xr, lin, out=lin)
        np.add(q, 1, out=q)
        np.copyto(scale, q)
        np.exp2(scale, out=scale)
        np.multiply(lin, scale, out=lin)
        result = self._quantize(lin, fmt)
        if patch is not None:
            result[patch] = ComputeBackend.imprecise_sqrt(
                self, x[patch], dtype=dtype)
        return result

    def imprecise_log2(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=False)
        if fields is None:
            return ComputeBackend.imprecise_log2(self, x, dtype=dtype)
        exp, frac, _, patch = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        c0, c1 = LOG2_COEFFS
        approx = self._f("approx", shape)
        np.multiply(mant, c1, out=approx)
        ef = self._f("scale", shape)
        np.copyto(ef, e)
        np.add(ef, approx, out=approx)
        np.add(approx, c0, out=approx)
        result = self._quantize(approx, fmt)
        if patch is not None:
            result[patch] = ComputeBackend.imprecise_log2(
                self, x[patch], dtype=dtype)
        return result

    def imprecise_divide(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        a = flush_subnormals(np.asarray(a, dtype=fmt.dtype), fmt)
        b = np.asarray(b, dtype=fmt.dtype)
        rcp = self.imprecise_reciprocal(b, dtype=dtype)
        a, rcp = np.broadcast_arrays(a, rcp)
        fa = self._f("fa", a.shape)
        np.copyto(fa, a)
        fb = self._f("fb", a.shape)
        np.copyto(fb, rcp)
        with np.errstate(invalid="ignore"):
            np.multiply(fa, fb, out=fa)
        return self._quantize(fa, fmt)
