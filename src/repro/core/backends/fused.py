"""The ``fused`` backend: single-pass, scratch-buffered unit kernels.

The reference units are written for clarity: each materializes 20-40
full-array temporaries (``np.where`` chains, repeated ``decompose``,
unconditional special-case handling).  At the 1M-element scale every one of
those temporaries is a fresh 8 MB allocation that round-trips through the
allocator's mmap threshold, which dominates the runtime.  This backend
reimplements the hot datapaths with

- **preallocated scratch buffers** — a grow-only pool of named ``int64`` /
  ``float64`` / ``bool`` working arrays reused across calls, so a steady
  -state op performs no large allocations besides its result;
- **in-place ufuncs** — every field extraction, alignment, and compose step
  writes into scratch via ``out=`` / ``np.copyto(..., where=...)``;
- **single-pass decompose reuse** — sign/exponent/fraction are extracted
  once per operand and reused by every later stage;
- **lazy special-case handling** — a cheap pre-check (an ``exp.max()``
  reduction on the already-extracted exponent fields) skips the NaN/inf
  (and, for the SFUs, zero/negative) branch entirely when no operand needs
  it, which is the overwhelmingly common case for kernel data.  When the
  pre-check fires, the op falls back to patching from (or delegating to)
  the reference unit, so special-value semantics are inherited verbatim.

Every method is bit-identical to the reference backend — asserted over
random and adversarial vectors by :mod:`repro.core.backends.parity` and
``tests/test_backends.py``.

The normalization step replaces the reference adder's float64 ``np.frexp``
MSB extraction (and its overshoot-correction fixup) with an integer-only
smear + popcount when ``numpy.bitwise_count`` is available (NumPy >= 2.0);
older NumPy falls back to the reference method on the scratch buffers.

Instances hold mutable scratch state: one backend belongs to one
:class:`~repro.core.context.ArithmeticContext` and is not thread-safe.
"""

from __future__ import annotations

import numpy as np

from ..adder import DEFAULT_THRESHOLD, _special_add, max_threshold
from ..configurable import MultiplierConfig
from ..floatops import flush_subnormals, format_for_dtype
from ..mitchell import mitchell_mantissa_product
from ..special import LOG2_COEFFS, RECIPROCAL_COEFFS, RSQRT_COEFFS, _SQRT1_2
from .base import ComputeBackend

__all__ = ["FusedBackend", "ScratchPool"]

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


class ScratchPool:
    """Named, grow-only scratch buffers keyed by (name, dtype).

    ``get`` returns a view of the right shape over a flat buffer that is
    reallocated only when a larger size is requested, so repeated calls at
    a kernel's working size are allocation-free.
    """

    def __init__(self):
        self._buffers: dict = {}

    def get(self, name: str, dtype, shape) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= int(dim)
        key = (name, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 1), dtype=dtype)
            self._buffers[key] = buf
        return buf[:n].reshape(shape)

    def nbytes(self) -> int:
        """Total bytes currently held (telemetry / debugging)."""
        return sum(buf.nbytes for buf in self._buffers.values())


class FusedBackend(ComputeBackend):
    """Scratch-buffered, lazily-special-cased unit kernels."""

    name = "fused"

    def __init__(self):
        self._scratch = ScratchPool()

    # Scratch accessors: int64 working arrays, bool masks, float64 datapath.
    def _i(self, name, shape):
        return self._scratch.get(name, np.int64, shape)

    def _b(self, name, shape):
        return self._scratch.get(name, np.bool_, shape)

    def _f(self, name, shape):
        return self._scratch.get(name, np.float64, shape)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _operands(self, a, b, fmt):
        a = np.asarray(a, dtype=fmt.dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return np.broadcast_arrays(a, b)

    def _fields(self, tag, values, fmt, shape):
        """Extract (bits, exponent, fraction) once into int64 scratch."""
        bits = self._i("bits_" + tag, shape)
        np.copyto(bits, values.view(fmt.uint))
        exp = self._i("exp_" + tag, shape)
        np.right_shift(bits, fmt.mantissa_bits, out=exp)
        np.bitwise_and(exp, fmt.exponent_mask, out=exp)
        frac = self._i("frac_" + tag, shape)
        np.bitwise_and(bits, fmt.mantissa_mask, out=frac)
        return bits, exp, frac

    def _msb_index(self, total, shape):
        """Exact MSB bit index of positive int64 values, in scratch.

        Integer-only: smear the leading one downward, then popcount.  This
        replaces the reference's float64 ``np.frexp`` extraction and its
        round-up overshoot correction.  Overwrites ``total`` is avoided;
        uses the ``smear``/``shreg`` scratch slots.
        """
        smear = self._i("smear", shape)
        np.copyto(smear, total)
        shreg = self._i("shreg", shape)
        if _HAS_BITWISE_COUNT:
            for s in (1, 2, 4, 8, 16, 32):
                np.right_shift(smear, s, out=shreg)
                np.bitwise_or(smear, shreg, out=smear)
            counts = self._scratch.get("popcount", np.uint8, shape)
            np.bitwise_count(smear, out=counts)
            msb = shreg
            np.copyto(msb, counts)
            np.subtract(msb, 1, out=msb)
            return msb
        # NumPy < 2.0: the reference float64 method, on scratch buffers.
        msb = shreg
        np.copyto(msb, np.frexp(smear.astype(np.float64))[1])
        np.subtract(msb, 1, out=msb)
        np.right_shift(smear, msb, out=smear)
        np.subtract(msb, smear == 0, out=msb)
        return msb

    # ------------------------------------------------------------------
    # Threshold adder
    # ------------------------------------------------------------------
    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        if not 1 <= threshold <= max_threshold(dtype):
            raise ValueError(
                f"threshold must be in [1, {max_threshold(dtype)}] for "
                f"{fmt.name}, got {threshold}"
            )
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        p = fmt.mantissa_bits
        guard = threshold
        emask = fmt.exponent_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        has_special = int(exp_a.max()) == emask or int(exp_b.max()) == emask

        # Magnitude comparison: with the sign bit masked off, the IEEE bit
        # pattern orders exactly like (exponent, fraction) lexicographic.
        mag_mask = (1 << ss) - 1
        mag_a = self._i("t1", shape)
        np.bitwise_and(bits_a, mag_mask, out=mag_a)
        mag_b = self._i("t2", shape)
        np.bitwise_and(bits_b, mag_mask, out=mag_b)
        a_larger = self._b("a_larger", shape)
        np.greater_equal(mag_a, mag_b, out=a_larger)

        # Working mantissas with the implicit one, at guard scale; subnormal
        # operands (exp == 0) contribute zero.
        mant_a = mag_a
        np.add(frac_a, np.int64(fmt.implicit_one), out=mant_a)
        np.left_shift(mant_a, guard, out=mant_a)
        zero_a = self._b("zero_a", shape)
        np.equal(exp_a, 0, out=zero_a)
        np.copyto(mant_a, np.int64(0), where=zero_a)
        mant_b = mag_b
        np.add(frac_b, np.int64(fmt.implicit_one), out=mant_b)
        np.left_shift(mant_b, guard, out=mant_b)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.copyto(mant_b, np.int64(0), where=zero_b)

        # Select x = larger magnitude, y = smaller.
        mant_x = self._i("mant_x", shape)
        np.copyto(mant_x, mant_b)
        np.copyto(mant_x, mant_a, where=a_larger)
        mant_y = self._i("mant_y", shape)
        np.copyto(mant_y, mant_a)
        np.copyto(mant_y, mant_b, where=a_larger)
        exp_x = self._i("exp_x", shape)
        np.maximum(exp_a, exp_b, out=exp_x)
        d = self._i("d", shape)
        np.minimum(exp_a, exp_b, out=d)
        np.subtract(exp_x, d, out=d)

        sign_a = bits_a
        np.right_shift(bits_a, ss, out=sign_a)
        sign_b = bits_b
        np.right_shift(bits_b, ss, out=sign_b)
        effective_sub = self._b("eff_sub", shape)
        np.not_equal(sign_a, sign_b, out=effective_sub)
        sign_z = self._i("sign_z", shape)
        np.copyto(sign_z, sign_b)
        np.copyto(sign_z, sign_a, where=a_larger)

        # Align y: shift right by d, keep only the top TH fraction bits at
        # the larger-exponent scale, zero entirely beyond the threshold.
        shift = self._i("shift", shape)
        np.minimum(d, p + guard + 1, out=shift)
        np.right_shift(mant_y, shift, out=mant_y)
        keep_cut = p + guard - threshold
        if keep_cut > 0:
            np.bitwise_and(mant_y, ~np.int64((1 << keep_cut) - 1), out=mant_y)
        far = self._b("far", shape)
        np.greater(d, threshold, out=far)
        np.copyto(mant_y, np.int64(0), where=far)

        total = self._i("total", shape)
        np.add(mant_x, mant_y, out=total)
        tsub = self._i("tsub", shape)
        np.subtract(mant_x, mant_y, out=tsub)
        np.copyto(total, tsub, where=effective_sub)
        np.abs(total, out=total)

        zero_total = self._b("zero_total", shape)
        np.equal(total, 0, out=zero_total)
        np.copyto(total, np.int64(1), where=zero_total)

        msb = self._msb_index(total, shape)
        norm_shift = msb
        np.subtract(msb, p + guard, out=norm_shift)
        exp_z = exp_x
        np.add(exp_x, norm_shift, out=exp_z)

        left = self._i("left", shape)
        np.negative(norm_shift, out=left)
        np.maximum(left, 0, out=left)
        right = self._i("right", shape)
        np.maximum(norm_shift, 0, out=right)
        np.left_shift(total, left, out=total)
        np.right_shift(total, right, out=total)
        frac_z = total
        np.right_shift(total, guard, out=frac_z)
        np.bitwise_and(frac_z, fmt.mantissa_mask, out=frac_z)

        overflow = self._b("overflow", shape)
        np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        np.logical_or(underflow, zero_total, out=underflow)

        # Compose in the integer domain; the sign part doubles as the
        # signed-zero pattern for underflow.
        np.clip(exp_z, 0, emask, out=exp_z)
        sign_part = self._i("sign_part", shape)
        np.left_shift(sign_z, ss, out=sign_part)
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, sign_part, out=bits_out)
        np.bitwise_or(bits_out, frac_z, out=bits_out)

        if bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(sign_part, np.int64(emask) << p, out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, sign_part, where=underflow)
        # Exact cancellation yields +0 as in IEEE round-to-nearest.
        np.copyto(bits_out, np.int64(0), where=zero_total)

        result = bits_out.astype(fmt.uint).view(fmt.dtype)

        if has_special:
            special_mask, special_vals = _special_add(a, b, fmt)
            np.copyto(result, special_vals, where=special_mask)
        return result

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add(a, -b, threshold=threshold, dtype=dtype)

    # ------------------------------------------------------------------
    # Table-1 multiplier
    # ------------------------------------------------------------------
    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        p = fmt.mantissa_bits
        emask = fmt.exponent_mask
        fmask = fmt.mantissa_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        if int(exp_a.max()) == emask or int(exp_b.max()) == emask:
            # NaN/inf present: take the reference path wholesale (rare).
            return ComputeBackend.imprecise_multiply(self, a, b, dtype=dtype)

        sign_z = self._i("sign_z", shape)
        np.right_shift(bits_a, ss, out=bits_a)
        np.right_shift(bits_b, ss, out=bits_b)
        np.bitwise_xor(bits_a, bits_b, out=sign_z)

        # Mantissa datapath: 1 + Ma + Mb, halved on carry (LSB truncated).
        frac_sum = frac_a
        np.add(frac_a, frac_b, out=frac_sum)
        carry = frac_b
        np.right_shift(frac_sum, p, out=carry)
        halved = self._i("halved", shape)
        np.bitwise_and(frac_sum, fmask, out=halved)
        np.right_shift(halved, 1, out=halved)
        carried = self._b("carried", shape)
        np.not_equal(carry, 0, out=carried)
        frac_z = frac_sum
        np.copyto(frac_z, halved, where=carried)
        np.bitwise_and(frac_z, fmask, out=frac_z)

        exp_z = self._i("exp_z", shape)
        np.add(exp_a, exp_b, out=exp_z)
        np.subtract(exp_z, fmt.bias, out=exp_z)
        np.add(exp_z, carry, out=exp_z)

        overflow = self._b("overflow", shape)
        np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        # Zero or subnormal operand (exp field 0) makes the product zero.
        zero_any = self._b("zero_any", shape)
        np.equal(exp_a, 0, out=zero_any)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.logical_or(zero_any, zero_b, out=zero_any)

        np.clip(exp_z, 0, emask, out=exp_z)
        sign_part = self._i("sign_part", shape)
        np.left_shift(sign_z, ss, out=sign_part)
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, sign_part, out=bits_out)
        np.bitwise_or(bits_out, frac_z, out=bits_out)

        if bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(sign_part, np.int64(emask) << p, out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, sign_part, where=underflow)
        np.copyto(bits_out, sign_part, where=zero_any)
        return bits_out.astype(fmt.uint).view(fmt.dtype)

    # ------------------------------------------------------------------
    # Mitchell (accuracy-configurable) multiplier
    # ------------------------------------------------------------------
    def configurable_multiply(self, a, b, config: MultiplierConfig,
                              dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        if config.truncation > fmt.mantissa_bits:
            raise ValueError(
                f"truncation {config.truncation} exceeds the "
                f"{fmt.mantissa_bits}-bit mantissa of {fmt.name}"
            )
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        p = fmt.mantissa_bits
        emask = fmt.exponent_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        if int(exp_a.max()) == emask or int(exp_b.max()) == emask:
            return ComputeBackend.configurable_multiply(self, a, b, config,
                                                        dtype=dtype)

        sign_z = self._i("sign_z", shape)
        np.right_shift(bits_a, ss, out=bits_a)
        np.right_shift(bits_b, ss, out=bits_b)
        np.bitwise_xor(bits_a, bits_b, out=sign_z)

        if config.truncation:
            cut = ~((1 << config.truncation) - 1) & fmt.mantissa_mask
            np.bitwise_and(frac_a, cut, out=frac_a)
            np.bitwise_and(frac_b, cut, out=frac_b)

        # Exact dyadic mantissa fractions in the float64 datapath.
        scale = float(fmt.implicit_one)
        ma = self._f("ma", shape)
        np.divide(frac_a, scale, out=ma)
        mb = self._f("mb", shape)
        np.divide(frac_b, scale, out=mb)

        if config.path == "log":
            # MA of (1+Ma)(1+Mb): both operands are in [1, 2), so the log
            # decomposition is k = 0, x = M exactly and the product reduces
            # to 1 + Ma + Mb (or 2 (Ma + Mb) past the carry) — the same
            # dyadic float64 values mitchell_mantissa_product computes.
            x_sum = ma
            np.add(ma, mb, out=x_sum)
            mant_product = self._f("mant_product", shape)
            np.add(x_sum, 1.0, out=mant_product)
            doubled = mb
            np.multiply(x_sum, 2.0, out=doubled)
            carried = self._b("carried", shape)
            np.greater_equal(x_sum, 1.0, out=carried)
            np.copyto(mant_product, doubled, where=carried)
        else:
            cross = mitchell_mantissa_product(ma, mb)
            mant_product = self._f("mant_product", shape)
            np.add(ma, 1.0, out=mant_product)
            np.add(mant_product, mb, out=mant_product)
            np.add(mant_product, cross, out=mant_product)

        carry = self._b("carry", shape)
        np.greater_equal(mant_product, 2.0, out=carry)
        mant_norm = mant_product
        halved = self._f("halved_f", shape)
        np.multiply(mant_product, 0.5, out=halved)
        np.copyto(mant_norm, halved, where=carry)

        np.subtract(mant_norm, 1.0, out=mant_norm)
        np.multiply(mant_norm, scale, out=mant_norm)
        np.floor(mant_norm, out=mant_norm)
        frac_z = self._i("frac_z", shape)
        np.copyto(frac_z, mant_norm, casting="unsafe")
        np.clip(frac_z, 0, fmt.mantissa_mask, out=frac_z)

        exp_z = self._i("exp_z", shape)
        np.add(exp_a, exp_b, out=exp_z)
        np.subtract(exp_z, fmt.bias, out=exp_z)
        np.add(exp_z, carry, out=exp_z)

        overflow = self._b("overflow", shape)
        np.greater(exp_z, fmt.max_exponent, out=overflow)
        underflow = self._b("underflow", shape)
        np.less(exp_z, 1, out=underflow)
        zero_any = self._b("zero_any", shape)
        np.equal(exp_a, 0, out=zero_any)
        zero_b = self._b("zero_b", shape)
        np.equal(exp_b, 0, out=zero_b)
        np.logical_or(zero_any, zero_b, out=zero_any)

        np.clip(exp_z, 0, emask, out=exp_z)
        sign_part = self._i("sign_part", shape)
        np.left_shift(sign_z, ss, out=sign_part)
        np.left_shift(exp_z, p, out=exp_z)
        bits_out = exp_z
        np.bitwise_or(bits_out, sign_part, out=bits_out)
        np.bitwise_or(bits_out, frac_z, out=bits_out)

        if bool(overflow.any()):
            inf_bits = self._i("inf_bits", shape)
            np.bitwise_or(sign_part, np.int64(emask) << p, out=inf_bits)
            np.copyto(bits_out, inf_bits, where=overflow)
        np.copyto(bits_out, sign_part, where=underflow)
        np.copyto(bits_out, sign_part, where=zero_any)
        return bits_out.astype(fmt.uint).view(fmt.dtype)

    # ------------------------------------------------------------------
    # bt_N truncation baseline
    # ------------------------------------------------------------------
    def truncated_multiply(self, a, b, truncation: int = 0, dtype=np.float32,
                           rounding: bool = True) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        if not 0 <= truncation <= fmt.mantissa_bits:
            raise ValueError(
                f"truncation must be in [0, {fmt.mantissa_bits}], "
                f"got {truncation}"
            )
        a, b = self._operands(a, b, fmt)
        shape = a.shape
        emask = fmt.exponent_mask
        ss = fmt.sign_shift

        bits_a, exp_a, frac_a = self._fields("a", a, fmt, shape)
        bits_b, exp_b, frac_b = self._fields("b", b, fmt, shape)
        if int(exp_a.max()) == emask or int(exp_b.max()) == emask:
            return ComputeBackend.truncated_multiply(self, a, b, truncation,
                                                     dtype=dtype,
                                                     rounding=rounding)

        # Operand reduction in the integer domain: flush subnormals to the
        # signed zero pattern, then round/truncate the mantissa bits.
        sign_mask = np.int64(1) << ss
        for bits, exp in ((bits_a, exp_a), (bits_b, exp_b)):
            sub = self._b("sub", shape)
            np.equal(exp, 0, out=sub)
            signed_zero = self._i("signed_zero", shape)
            np.bitwise_and(bits, sign_mask, out=signed_zero)
            np.copyto(bits, signed_zero, where=sub)
            if truncation:
                # In the signed-int64 domain ~((1<<t)-1) keeps every high
                # bit (including the sign bit for binary64 patterns), so no
                # width clamp is needed.
                mask = np.int64(~((1 << truncation) - 1))
                if rounding:
                    np.add(bits, np.int64(1 << (truncation - 1)), out=bits)
                np.bitwise_and(bits, mask, out=bits)

        # Exact float64 product of the reduced operands, then result flush.
        fa = self._f("fa", shape)
        np.copyto(fa, bits_a.astype(fmt.uint).view(fmt.dtype))
        fb = self._f("fb", shape)
        np.copyto(fb, bits_b.astype(fmt.uint).view(fmt.dtype))
        np.multiply(fa, fb, out=fa)
        product = fa.astype(fmt.dtype)
        return flush_subnormals(product, fmt)

    # ------------------------------------------------------------------
    # FMA: fused multiply feeding the fused adder
    # ------------------------------------------------------------------
    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        product = self.imprecise_multiply(a, b, dtype=dtype)
        return self.imprecise_add(product, c, threshold=threshold, dtype=dtype)

    # ------------------------------------------------------------------
    # Linear SFUs
    # ------------------------------------------------------------------
    def _sfu_fields(self, x, fmt, signed_ok: bool):
        """Decompose an SFU operand; None signals the reference fallback.

        Returns ``(x, shape, exp, frac, negative_mask_or_None)`` for the
        clean fast path: all operands normal and finite (and non-negative
        unless ``signed_ok``), so zero / inf / NaN / subnormal / negative
        special handling can be skipped entirely.
        """
        bits = self._i("bits_a", x.shape)
        np.copyto(bits, x.view(fmt.uint))
        exp = self._i("exp_a", x.shape)
        np.right_shift(bits, fmt.mantissa_bits, out=exp)
        np.bitwise_and(exp, fmt.exponent_mask, out=exp)
        if int(exp.max()) == fmt.exponent_mask or int(exp.min()) == 0:
            return None
        sign = self._i("sign_a", x.shape)
        np.right_shift(bits, fmt.sign_shift, out=sign)
        if not signed_ok and bool(sign.any()):
            return None
        frac = self._i("frac_a", x.shape)
        np.bitwise_and(bits, fmt.mantissa_mask, out=frac)
        negative = None
        if signed_ok:
            negative = self._b("negative", x.shape)
            np.not_equal(sign, 0, out=negative)
        return exp, frac, negative

    def _mantissa_and_exponent(self, exp, frac, fmt, shape):
        """float64 mantissa 1+M in [1, 2) and unbiased exponent, in scratch."""
        mant = self._f("mant", shape)
        np.divide(frac, float(fmt.implicit_one), out=mant)
        np.add(mant, 1.0, out=mant)
        e = self._i("e", shape)
        np.subtract(exp, fmt.bias, out=e)
        return mant, e

    def _quantize(self, values, fmt):
        out = values.astype(fmt.dtype)
        return flush_subnormals(out, fmt)

    def imprecise_reciprocal(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=True)
        if fields is None:
            return ComputeBackend.imprecise_reciprocal(self, x, dtype=dtype)
        exp, frac, negative = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        xr = mant
        np.multiply(mant, 0.5, out=xr)
        c0, c1 = RECIPROCAL_COEFFS
        approx = self._f("approx", shape)
        np.multiply(xr, c1, out=approx)
        np.add(approx, c0, out=approx)
        np.add(e, 1, out=e)
        np.negative(e, out=e)
        scale = self._f("scale", shape)
        np.copyto(scale, e)
        np.exp2(scale, out=scale)
        np.multiply(approx, scale, out=approx)
        negated = self._f("negated", shape)
        np.negative(approx, out=negated)
        np.copyto(approx, negated, where=negative)
        return self._quantize(approx, fmt)

    def imprecise_rsqrt(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=False)
        if fields is None:
            return ComputeBackend.imprecise_rsqrt(self, x, dtype=dtype)
        exp, frac, _ = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        xr = mant
        np.multiply(mant, 0.5, out=xr)
        c0, c1 = RSQRT_COEFFS
        lin = self._f("approx", shape)
        np.multiply(xr, c1, out=lin)
        np.add(lin, c0, out=lin)
        # e1 = e + 1 = 2q + r with r in {0, 1}
        e1 = e
        np.add(e1, 1, out=e1)
        q = self._i("q", shape)
        np.floor_divide(e1, 2, out=q)
        r = self._i("r", shape)
        np.left_shift(q, 1, out=r)
        np.subtract(e1, r, out=r)
        scale = self._f("scale", shape)
        nq = self._i("shift", shape)
        np.negative(q, out=nq)
        np.copyto(scale, nq)
        np.exp2(scale, out=scale)
        np.multiply(lin, scale, out=lin)
        odd = self._b("odd", shape)
        np.equal(r, 1, out=odd)
        factor = self._f("factor", shape)
        np.copyto(factor, 1.0)
        np.copyto(factor, _SQRT1_2, where=odd)
        np.multiply(lin, factor, out=lin)
        return self._quantize(lin, fmt)

    def imprecise_sqrt(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=False)
        if fields is None:
            return ComputeBackend.imprecise_sqrt(self, x, dtype=dtype)
        exp, frac, _ = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        q = self._i("q", shape)
        np.floor_divide(e, 2, out=q)
        r = self._i("r", shape)
        np.left_shift(q, 1, out=r)
        np.subtract(e, r, out=r)
        # xr = mant * 2^r * 0.25 in [0.25, 1)
        scale = self._f("scale", shape)
        np.copyto(scale, r)
        np.exp2(scale, out=scale)
        xr = mant
        np.multiply(mant, scale, out=xr)
        np.multiply(xr, 0.25, out=xr)
        c0, c1 = RSQRT_COEFFS
        lin = self._f("approx", shape)
        np.multiply(xr, c1, out=lin)
        np.add(lin, c0, out=lin)
        np.multiply(xr, lin, out=lin)
        np.add(q, 1, out=q)
        np.copyto(scale, q)
        np.exp2(scale, out=scale)
        np.multiply(lin, scale, out=lin)
        return self._quantize(lin, fmt)

    def imprecise_log2(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        x = np.asarray(x, dtype=fmt.dtype)
        fields = self._sfu_fields(x, fmt, signed_ok=False)
        if fields is None:
            return ComputeBackend.imprecise_log2(self, x, dtype=dtype)
        exp, frac, _ = fields
        shape = x.shape
        mant, e = self._mantissa_and_exponent(exp, frac, fmt, shape)
        c0, c1 = LOG2_COEFFS
        approx = self._f("approx", shape)
        np.multiply(mant, c1, out=approx)
        ef = self._f("scale", shape)
        np.copyto(ef, e)
        np.add(ef, approx, out=approx)
        np.add(approx, c0, out=approx)
        return self._quantize(approx, fmt)

    def imprecise_divide(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        a = flush_subnormals(np.asarray(a, dtype=fmt.dtype), fmt)
        b = np.asarray(b, dtype=fmt.dtype)
        rcp = self.imprecise_reciprocal(b, dtype=dtype)
        a, rcp = np.broadcast_arrays(a, rcp)
        fa = self._f("fa", a.shape)
        np.copyto(fa, a)
        fb = self._f("fb", a.shape)
        np.copyto(fb, rcp)
        with np.errstate(invalid="ignore"):
            np.multiply(fa, fb, out=fa)
        return self._quantize(fa, fmt)
