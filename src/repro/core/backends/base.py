"""Backend interface and the ``reference`` backend.

A :class:`ComputeBackend` executes the imprecise unit operations for an
:class:`~repro.core.context.ArithmeticContext`.  The base class *is* the
``reference`` backend: every method delegates to the original vectorized
NumPy unit in :mod:`repro.core`, which stays the single source of truth for
the paper's semantics.  Alternative backends (``fused``, ``numba``)
override the hot methods with faster implementations and are contractually
bit-identical — the parity harness in :mod:`repro.core.backends.parity`
asserts exact equality on random and adversarial operand vectors, so
result-cache keys never depend on the backend choice.
"""

from __future__ import annotations

import numpy as np

from ..adder import DEFAULT_THRESHOLD, imprecise_add, imprecise_subtract
from ..configurable import MultiplierConfig, configurable_multiply
from ..fma import imprecise_fma
from ..multiplier import imprecise_multiply
from ..special import (
    imprecise_divide,
    imprecise_log2,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
)
from ..truncation import truncated_multiply

__all__ = ["ComputeBackend", "ReferenceBackend"]


class ComputeBackend:
    """Executes the imprecise unit operations (reference implementation).

    Subclasses override individual methods; anything not overridden falls
    back to the reference NumPy unit, so a backend only has to accelerate
    the operations it cares about while keeping the full contract.

    Backends may hold per-instance state (scratch buffers); one instance
    belongs to one :class:`~repro.core.context.ArithmeticContext` and is
    not thread-safe.
    """

    #: Registry name of the backend.
    name = "reference"

    # ------------------------------------------------------------------
    # FPU ops
    # ------------------------------------------------------------------
    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        return imprecise_add(a, b, threshold=threshold, dtype=dtype)

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        return imprecise_subtract(a, b, threshold=threshold, dtype=dtype)

    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        return imprecise_multiply(a, b, dtype=dtype)

    def configurable_multiply(self, a, b, config: MultiplierConfig,
                              dtype=np.float32) -> np.ndarray:
        return configurable_multiply(a, b, config, dtype=dtype)

    def truncated_multiply(self, a, b, truncation: int = 0, dtype=np.float32,
                           rounding: bool = True) -> np.ndarray:
        return truncated_multiply(a, b, truncation, dtype=dtype,
                                  rounding=rounding)

    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        return imprecise_fma(a, b, c, threshold=threshold, dtype=dtype)

    # ------------------------------------------------------------------
    # SFU ops (linear approximations; the quadratic extension dispatches
    # directly in the context and is not backend-routed)
    # ------------------------------------------------------------------
    def imprecise_reciprocal(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_reciprocal(x, dtype=dtype)

    def imprecise_rsqrt(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_rsqrt(x, dtype=dtype)

    def imprecise_sqrt(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_sqrt(x, dtype=dtype)

    def imprecise_log2(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_log2(x, dtype=dtype)

    def imprecise_divide(self, a, b, dtype=np.float32) -> np.ndarray:
        return imprecise_divide(a, b, dtype=dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class ReferenceBackend(ComputeBackend):
    """The original vectorized NumPy units, unchanged."""

    name = "reference"
