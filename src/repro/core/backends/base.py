"""Backend interface and the ``reference`` backend.

A :class:`ComputeBackend` executes the imprecise unit operations for an
:class:`~repro.core.context.ArithmeticContext`.  The base class *is* the
``reference`` backend: every method delegates to the original vectorized
NumPy unit in :mod:`repro.core`, which stays the single source of truth for
the paper's semantics.  Alternative backends (``fused``, ``numba``)
override the hot methods with faster implementations and are contractually
bit-identical — the parity harness in :mod:`repro.core.backends.parity`
asserts exact equality on random and adversarial operand vectors, so
result-cache keys never depend on the backend choice.
"""

from __future__ import annotations

import numpy as np

from ..adder import DEFAULT_THRESHOLD, imprecise_add, imprecise_subtract
from ..configurable import MultiplierConfig, configurable_multiply
from ..fma import imprecise_fma
from ..multiplier import imprecise_multiply
from ..special import (
    imprecise_divide,
    imprecise_log2,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
)
from ..truncation import truncated_multiply

__all__ = ["ComputeBackend", "ReferenceBackend", "BATCH_OPS"]

#: Batched entry points of the backend contract (op name -> method name).
#: Used by the parity harness, the op-coverage lint checker, and the
#: context-level batch dispatcher.
BATCH_OPS = {
    "add": "imprecise_add_batch",
    "sub": "imprecise_subtract_batch",
    "fma": "imprecise_fma_batch",
    "mul_mitchell": "configurable_multiply_batch",
    "mul_truncated": "truncated_multiply_batch",
}


def _rounding_flags(rounding, n: int) -> list:
    """Normalize a shared-or-per-config rounding flag to ``n`` booleans."""
    if isinstance(rounding, (list, tuple)):
        if len(rounding) != n:
            raise ValueError(
                f"rounding sequence has {len(rounding)} entries for "
                f"{n} truncations"
            )
        return [bool(r) for r in rounding]
    return [bool(rounding)] * n


class ComputeBackend:
    """Executes the imprecise unit operations (reference implementation).

    Subclasses override individual methods; anything not overridden falls
    back to the reference NumPy unit, so a backend only has to accelerate
    the operations it cares about while keeping the full contract.

    Backends may hold per-instance state (scratch buffers); one instance
    belongs to one :class:`~repro.core.context.ArithmeticContext` and is
    not thread-safe.
    """

    #: Registry name of the backend.
    name = "reference"

    # ------------------------------------------------------------------
    # FPU ops
    # ------------------------------------------------------------------
    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        return imprecise_add(a, b, threshold=threshold, dtype=dtype)

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        return imprecise_subtract(a, b, threshold=threshold, dtype=dtype)

    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        return imprecise_multiply(a, b, dtype=dtype)

    def configurable_multiply(self, a, b, config: MultiplierConfig,
                              dtype=np.float32) -> np.ndarray:
        return configurable_multiply(a, b, config, dtype=dtype)

    def truncated_multiply(self, a, b, truncation: int = 0, dtype=np.float32,
                           rounding: bool = True) -> np.ndarray:
        return truncated_multiply(a, b, truncation, dtype=dtype,
                                  rounding=rounding)

    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        return imprecise_fma(a, b, c, threshold=threshold, dtype=dtype)

    # ------------------------------------------------------------------
    # Batched entry points: one operand pair, N configurations
    # ------------------------------------------------------------------
    # Each returns one result array per configuration entry, in order, and
    # every entry is contractually bit-identical to the corresponding
    # scalar-config call above (asserted by parity.check_batch_parity).
    # The base implementations are the definitional per-config loops;
    # accelerated backends override them to share the operand field
    # decomposition across the whole batch.

    def imprecise_add_batch(self, a, b, thresholds,
                            dtype=np.float32) -> list:
        """``a + b`` under several adder thresholds at once."""
        return [
            self.imprecise_add(a, b, threshold=th, dtype=dtype)
            for th in thresholds
        ]

    def imprecise_subtract_batch(self, a, b, thresholds,
                                 dtype=np.float32) -> list:
        """``a - b`` under several adder thresholds at once."""
        return [
            self.imprecise_subtract(a, b, threshold=th, dtype=dtype)
            for th in thresholds
        ]

    def imprecise_fma_batch(self, a, b, c, thresholds,
                            dtype=np.float32) -> list:
        """``a * b + c`` under several adder thresholds at once.

        The Table-1 product is threshold-invariant, so batched backends
        compute it once and feed it to the batched adder.
        """
        return [
            self.imprecise_fma(a, b, c, threshold=th, dtype=dtype)
            for th in thresholds
        ]

    def configurable_multiply_batch(self, a, b, configs,
                                    dtype=np.float32) -> list:
        """``a * b`` under several :class:`MultiplierConfig` settings at once."""
        return [
            self.configurable_multiply(a, b, cfg, dtype=dtype)
            for cfg in configs
        ]

    def truncated_multiply_batch(self, a, b, truncations, dtype=np.float32,
                                 rounding=True) -> list:
        """``a * b`` under several ``bt_N`` truncation settings at once.

        ``rounding`` is a single flag shared by the batch or a sequence
        aligned with ``truncations``.
        """
        roundings = _rounding_flags(rounding, len(list(truncations)))
        return [
            self.truncated_multiply(a, b, t, dtype=dtype, rounding=r)
            for t, r in zip(truncations, roundings)
        ]

    # ------------------------------------------------------------------
    # SFU ops (linear approximations; the quadratic extension dispatches
    # directly in the context and is not backend-routed)
    # ------------------------------------------------------------------
    def imprecise_reciprocal(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_reciprocal(x, dtype=dtype)

    def imprecise_rsqrt(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_rsqrt(x, dtype=dtype)

    def imprecise_sqrt(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_sqrt(x, dtype=dtype)

    def imprecise_log2(self, x, dtype=np.float32) -> np.ndarray:
        return imprecise_log2(x, dtype=dtype)

    def imprecise_divide(self, a, b, dtype=np.float32) -> np.ndarray:
        return imprecise_divide(a, b, dtype=dtype)

    # ------------------------------------------------------------------
    # Scratch management (no-ops for stateless backends)
    # ------------------------------------------------------------------
    def scratch_nbytes(self) -> int:
        """Bytes pinned in scratch buffers (0 for stateless backends)."""
        return 0

    def release_scratch(self) -> int:
        """Free scratch buffers; returns the bytes released."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class ReferenceBackend(ComputeBackend):
    """The original vectorized NumPy units, unchanged."""

    name = "reference"
