"""Parity harness: proves backends bit-identical to ``reference``.

The backend contract is exact bit equality, not closeness: the result
cache keys experiments by configuration alone, so two backends that
disagreed in even one ULP would poison caches and make experiments
irreproducible across machines.  This module generates random plus
adversarial operand vectors (subnormals, signed zeros, inf/NaN, exact
cancellation pairs, extreme magnitudes) and compares every backend
operation against the reference implementation bit for bit.

Used by ``tests/test_backends.py`` (the contractual gate) and by
``repro bench`` (which refuses to publish numbers for a backend that
fails parity).
"""

from __future__ import annotations

import numpy as np

from ..adder import max_threshold
from ..configurable import MultiplierConfig
from ..floatops import format_for_dtype
from .base import ComputeBackend, ReferenceBackend

__all__ = [
    "adversarial_operands",
    "finite_operands",
    "check_parity",
    "check_batch_parity",
    "PARITY_OPS",
    "BATCH_PARITY_OPS",
]

#: Operation names exercised by :func:`check_parity`.
PARITY_OPS = (
    "add", "sub", "mul_table1", "mul_mitchell", "mul_truncated",
    "fma", "rcp", "rsqrt", "sqrt", "log2", "div",
)

#: Batched entry points exercised by :func:`check_batch_parity`
#: (mirrors :data:`~repro.core.backends.base.BATCH_OPS`).
BATCH_PARITY_OPS = ("add", "sub", "fma", "mul_mitchell", "mul_truncated")


def adversarial_operands(dtype, n_random: int = 4096, seed: int = 7):
    """Operand pair (a, b) stressing every special-case branch.

    Random bit patterns (which hit NaNs, infinities, subnormals, and the
    full exponent range with high probability) are concatenated with a
    hand-picked corner list and exact-cancellation pairs ``(v, -v)``.
    """
    fmt = format_for_dtype(dtype)
    rng = np.random.default_rng(seed)
    info = np.iinfo(fmt.uint)
    raw = rng.integers(0, info.max, size=n_random, dtype=np.uint64)
    vals = raw.astype(fmt.uint).view(fmt.dtype)
    fin = np.finfo(fmt.dtype)
    corners = np.array(
        [0.0, -0.0, 1.0, -1.0, 1.5, 2.0, 0.1, -0.375,
         np.inf, -np.inf, np.nan,
         fin.tiny, -fin.tiny, fin.tiny / 2, -fin.tiny / 2,
         fin.smallest_subnormal, -fin.smallest_subnormal,
         fin.max, -fin.max, fin.eps, 1.0 + fin.eps],
        dtype=fmt.dtype,
    )
    a = np.concatenate([vals, corners, np.repeat(corners, len(corners))])
    b = np.concatenate([vals[::-1].copy(), corners[::-1].copy(),
                        np.tile(corners, len(corners))])
    # Exact cancellation: a + (-a) must yield +0 on every backend.
    cancel = np.concatenate([vals[:256], corners])
    a = np.concatenate([a, cancel])
    b = np.concatenate([b, -cancel])
    return a, b


def finite_operands(dtype, n_random: int = 4096, seed: int = 8):
    """Finite normal operands spanning the exponent range, both signs."""
    fmt = format_for_dtype(dtype)
    rng = np.random.default_rng(seed)
    mant = rng.uniform(1.0, 2.0, size=n_random)
    exp = rng.integers(-30, 31, size=n_random)
    sign = np.where(rng.integers(0, 2, size=n_random) == 1, -1.0, 1.0)
    a = (sign * np.ldexp(mant, exp)).astype(fmt.dtype)
    b = a[::-1].copy()
    return a, b


def _mismatch(op, param, dtype, ref, got) -> dict:
    fmt = format_for_dtype(np.dtype(dtype))
    bad = np.nonzero(ref.view(fmt.uint) != got.view(fmt.uint))[0]
    return {
        "op": op,
        "param": param,
        "dtype": np.dtype(dtype).name,
        "mismatches": int(bad.size),
        "first_index": int(bad[0]),
    }


def check_parity(backend: ComputeBackend, dtype=np.float32,
                 n_random: int = 4096, ops=PARITY_OPS, seed: int = 7) -> list:
    """Compare ``backend`` against the reference on adversarial vectors.

    Returns a list of mismatch descriptions — empty means the backend is
    bit-identical on every checked operation.
    """
    fmt = format_for_dtype(dtype)
    reference = ReferenceBackend()
    failures = []

    def compare(op, param, ref, got):
        if not np.array_equal(ref.view(fmt.uint), got.view(fmt.uint)):
            failures.append(_mismatch(op, param, dtype, ref, got))

    thresholds = sorted({1, 4, 8, max_threshold(dtype)})
    # Two sweeps: adversarial operands hit every special-case branch, while
    # the finite-only set keeps backends on their fast clean path (several
    # ops delegate wholesale to reference the moment NaN/inf appear, which
    # would otherwise leave the clean path entirely unexercised).
    for tag, (a, b) in (
        ("adversarial", adversarial_operands(dtype, n_random=n_random,
                                             seed=seed)),
        ("finite", finite_operands(dtype, n_random=n_random, seed=seed + 1)),
    ):
        c = np.concatenate([b[1:], b[:1]])
        _sweep(compare, reference, backend, tag, a, b, c, fmt, dtype,
               thresholds, ops)
    return failures


def check_batch_parity(backend: ComputeBackend, dtype=np.float32,
                       n_random: int = 4096, ops=BATCH_PARITY_OPS,
                       seed: int = 7) -> list:
    """Compare batched entry points against per-config reference calls.

    Every entry of a batched call must be bit-identical to the scalar
    reference call with the same configuration.  The config lists include
    duplicates and a degenerate single-config batch, so shared-head
    batching cannot quietly couple lanes or special-case batch size 1.
    Returns mismatch descriptions; empty means full batch parity.
    """
    fmt = format_for_dtype(dtype)
    reference = ReferenceBackend()
    failures = []

    def compare(op, param, ref, got):
        if not np.array_equal(ref.view(fmt.uint), got.view(fmt.uint)):
            failures.append(_mismatch(op, param, dtype, ref, got))

    max_th = max_threshold(dtype)
    # Duplicates on purpose: batched kernels must not alias per-config
    # outputs.  The singleton list checks the degenerate batch.
    threshold_lists = ([1, 4, 8, 8, max_th, 2], [8])
    mitchell_lists = (
        ["fp_tr0", "lp_tr0", "fp_tr8", "fp_tr8", "lp_tr16"],
        ["lp_tr0"],
    )
    bt_lists = ([(0, True), (8, True), (8, False), (8, False), (16, True)],
                [(8, False)])

    for tag, (a, b) in (
        ("adversarial", adversarial_operands(dtype, n_random=n_random,
                                             seed=seed)),
        ("finite", finite_operands(dtype, n_random=n_random, seed=seed + 1)),
    ):
        c = np.concatenate([b[1:], b[:1]])
        if "add" in ops:
            for thresholds in threshold_lists:
                got = backend.imprecise_add_batch(a, b, thresholds,
                                                  dtype=dtype)
                for th, out in zip(thresholds, got):
                    compare("add_batch", f"{tag}:TH={th}/n={len(thresholds)}",
                            reference.imprecise_add(a, b, th, dtype=dtype),
                            out)
        if "sub" in ops:
            for thresholds in threshold_lists:
                got = backend.imprecise_subtract_batch(a, b, thresholds,
                                                       dtype=dtype)
                for th, out in zip(thresholds, got):
                    compare("sub_batch", f"{tag}:TH={th}/n={len(thresholds)}",
                            reference.imprecise_subtract(a, b, th,
                                                         dtype=dtype),
                            out)
        if "fma" in ops:
            for thresholds in threshold_lists:
                got = backend.imprecise_fma_batch(a, b, c, thresholds,
                                                  dtype=dtype)
                for th, out in zip(thresholds, got):
                    compare("fma_batch", f"{tag}:TH={th}/n={len(thresholds)}",
                            reference.imprecise_fma(a, b, c, th, dtype=dtype),
                            out)
        if "mul_mitchell" in ops:
            for names in mitchell_lists:
                configs = [MultiplierConfig.from_name(name) for name in names
                           if MultiplierConfig.from_name(name).truncation
                           <= fmt.mantissa_bits]
                got = backend.configurable_multiply_batch(a, b, configs,
                                                          dtype=dtype)
                for cfg, out in zip(configs, got):
                    compare("mul_mitchell_batch",
                            f"{tag}:{cfg.name}/n={len(configs)}",
                            reference.configurable_multiply(a, b, cfg,
                                                            dtype=dtype),
                            out)
        if "mul_truncated" in ops:
            for pairs in bt_lists:
                truncations = [t for t, _ in pairs]
                roundings = [r for _, r in pairs]
                got = backend.truncated_multiply_batch(a, b, truncations,
                                                       dtype=dtype,
                                                       rounding=roundings)
                for (t, r), out in zip(pairs, got):
                    compare("mul_truncated_batch",
                            f"{tag}:bt_{t},round={r}/n={len(pairs)}",
                            reference.truncated_multiply(a, b, t, dtype=dtype,
                                                         rounding=r),
                            out)
    return failures


def _sweep(compare, reference, backend, tag, a, b, c, fmt, dtype,
           thresholds, ops):
    if "add" in ops:
        for th in thresholds:
            compare("add", f"{tag}:TH={th}",
                    reference.imprecise_add(a, b, th, dtype=dtype),
                    backend.imprecise_add(a, b, th, dtype=dtype))
    if "sub" in ops:
        compare("sub", f"{tag}:TH=8",
                reference.imprecise_subtract(a, b, 8, dtype=dtype),
                backend.imprecise_subtract(a, b, 8, dtype=dtype))
    if "mul_table1" in ops:
        compare("mul_table1", tag,
                reference.imprecise_multiply(a, b, dtype=dtype),
                backend.imprecise_multiply(a, b, dtype=dtype))
    if "mul_mitchell" in ops:
        for name in ("fp_tr0", "lp_tr0", "fp_tr8", "lp_tr16"):
            cfg = MultiplierConfig.from_name(name)
            if cfg.truncation > fmt.mantissa_bits:
                continue
            compare("mul_mitchell", f"{tag}:{name}",
                    reference.configurable_multiply(a, b, cfg, dtype=dtype),
                    backend.configurable_multiply(a, b, cfg, dtype=dtype))
    if "mul_truncated" in ops:
        for truncation, rounding in ((0, True), (8, True), (8, False)):
            compare("mul_truncated", f"{tag}:bt_{truncation},round={rounding}",
                    reference.truncated_multiply(a, b, truncation,
                                                 dtype=dtype,
                                                 rounding=rounding),
                    backend.truncated_multiply(a, b, truncation,
                                               dtype=dtype,
                                               rounding=rounding))
    if "fma" in ops:
        compare("fma", f"{tag}:TH=8",
                reference.imprecise_fma(a, b, c, 8, dtype=dtype),
                backend.imprecise_fma(a, b, c, 8, dtype=dtype))
    if "rcp" in ops:
        compare("rcp", tag,
                reference.imprecise_reciprocal(a, dtype=dtype),
                backend.imprecise_reciprocal(a, dtype=dtype))
    # The unsigned SFUs fall back to the reference wholesale when any
    # operand is negative, so sweep both the raw vector (special/negative
    # handling) and its magnitude (the fused clean path).
    pos = np.abs(a)
    if "rsqrt" in ops:
        compare("rsqrt", tag,
                reference.imprecise_rsqrt(a, dtype=dtype),
                backend.imprecise_rsqrt(a, dtype=dtype))
        compare("rsqrt", f"{tag}:abs",
                reference.imprecise_rsqrt(pos, dtype=dtype),
                backend.imprecise_rsqrt(pos, dtype=dtype))
    if "sqrt" in ops:
        compare("sqrt", tag,
                reference.imprecise_sqrt(a, dtype=dtype),
                backend.imprecise_sqrt(a, dtype=dtype))
        compare("sqrt", f"{tag}:abs",
                reference.imprecise_sqrt(pos, dtype=dtype),
                backend.imprecise_sqrt(pos, dtype=dtype))
    if "log2" in ops:
        compare("log2", tag,
                reference.imprecise_log2(a, dtype=dtype),
                backend.imprecise_log2(a, dtype=dtype))
        compare("log2", f"{tag}:abs",
                reference.imprecise_log2(pos, dtype=dtype),
                backend.imprecise_log2(pos, dtype=dtype))
    if "div" in ops:
        compare("div", tag,
                reference.imprecise_divide(a, b, dtype=dtype),
                backend.imprecise_divide(a, b, dtype=dtype))
