"""Pluggable compute backends for the imprecise unit operations.

One semantic contract, several interchangeable execution engines:

- ``reference`` — the original vectorized NumPy units (the default);
- ``fused`` — single-pass kernels with preallocated scratch buffers,
  in-place ufuncs, and lazy special-case handling (~2-3x on large arrays);
- ``threaded`` — the fused kernels tiled across a thread pool (multi-core
  without any compiled dependency);
- ``numba`` — JIT-compiled scalar integer datapaths; optional, gracefully
  absent when numba is not installed;
- ``numba-parallel`` — the numba datapaths under ``prange``, with batched
  element x config kernels; optional like ``numba``.

The parallel backends accept a thread count (``get_backend(name,
threads=N)``); resolution and the runner-worker oversubscription contract
live in :mod:`repro.core.backends.threads`.

Backends are **contractually bit-identical**: the parity harness
(:mod:`repro.core.backends.parity`, run by ``tests/test_backends.py`` and
``repro bench``) sweeps random and adversarial operand vectors and asserts
exact equality against ``reference``.  Because the numbers cannot differ,
the backend choice is deliberately excluded from
:meth:`~repro.core.config.IHWConfig.canonical` — result caches are shared
across backends.

Selection, in priority order:

1. the ``backend=`` argument of :class:`~repro.core.context.ArithmeticContext`;
2. :attr:`IHWConfig.backend <repro.core.config.IHWConfig.backend>`;
3. the ``REPRO_BACKEND`` environment variable;
4. ``reference``.
"""

from __future__ import annotations

import importlib.util
import os
import weakref

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "backend_names",
    "backend_available",
    "backend_accepts_threads",
    "available_backend_names",
    "default_backend_name",
    "get_backend",
    "scratch_nbytes",
    "release_all_scratch",
]

#: Environment variable selecting the process-wide default backend.
ENV_VAR = "REPRO_BACKEND"

DEFAULT_BACKEND = "reference"


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run here (missing optional dependency)."""


#: Live backends holding scratch state, tracked weakly so instances die
#: with their contexts.  Lets long-lived hosts (the experiment runner, the
#: bench loop) reclaim peak-sized batch buffers between tasks.
_SCRATCH_HOLDERS: "weakref.WeakSet" = weakref.WeakSet()


def _register_scratch_holder(backend) -> None:
    _SCRATCH_HOLDERS.add(backend)


def scratch_nbytes() -> int:
    """Total bytes pinned in scratch pools across live backends."""
    return sum(b.scratch_nbytes() for b in _SCRATCH_HOLDERS)


def release_all_scratch() -> int:
    """Free every live backend's scratch pool; returns the bytes released."""
    return sum(b.release_scratch() for b in _SCRATCH_HOLDERS)


def _make_reference():
    from .base import ReferenceBackend

    return ReferenceBackend()


def _make_fused():
    from .fused import FusedBackend

    return FusedBackend()


def _make_numba():
    from .numba_backend import NumbaBackend

    return NumbaBackend()


def _make_threaded(threads=None):
    from .threaded import ThreadedFusedBackend

    return ThreadedFusedBackend(threads=threads)


def _make_numba_parallel(threads=None):
    from .numba_backend import NumbaParallelBackend

    return NumbaParallelBackend(threads=threads)


_FACTORIES = {
    "reference": _make_reference,
    "fused": _make_fused,
    "threaded": _make_threaded,
    "numba": _make_numba,
    "numba-parallel": _make_numba_parallel,
}

#: Backends whose factory accepts a ``threads`` count.
_THREADED_BACKENDS = ("threaded", "numba-parallel")


def backend_accepts_threads(name: str) -> bool:
    """Whether the named backend's factory takes a thread count."""
    return name in _THREADED_BACKENDS


def backend_names() -> tuple:
    """Every registered backend name, available here or not."""
    return tuple(_FACTORIES)


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually be constructed in this environment."""
    if name not in _FACTORIES:
        return False
    if name in ("numba", "numba-parallel"):
        return importlib.util.find_spec("numba") is not None
    return True


def available_backend_names() -> tuple:
    """The registered backends constructible in this environment."""
    return tuple(name for name in _FACTORIES if backend_available(name))


def default_backend_name() -> str:
    """The backend selected by ``REPRO_BACKEND``, or ``reference``.

    Raises ``ValueError`` for an unknown name so a typo in the environment
    fails loudly instead of silently running the wrong engine.
    """
    name = os.environ.get(ENV_VAR, "").strip().lower()
    if not name:
        return DEFAULT_BACKEND
    if name not in _FACTORIES:
        raise ValueError(
            f"{ENV_VAR}={name!r} is not a registered backend; "
            f"expected one of {backend_names()}"
        )
    return name


def get_backend(name=None, threads=None):
    """Resolve a backend selection to a fresh :class:`ComputeBackend`.

    ``name`` may be a backend name, an existing backend instance (returned
    as-is), or ``None`` for the environment/default resolution.  Each call
    returns a fresh instance because backends may hold per-context scratch
    state.  ``threads`` is forwarded to the parallel backends' factories;
    requesting threads from a backend without a thread pool is an error
    (``None`` is always accepted and means "resolve the default").
    """
    from .base import ComputeBackend

    if isinstance(name, ComputeBackend):
        return name
    if name is None:
        name = default_backend_name()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {backend_names()}"
        )
    if not backend_available(name):
        raise BackendUnavailableError(
            f"backend {name!r} is registered but not available here "
            "(missing optional dependency)"
        )
    if name in _THREADED_BACKENDS:
        return _FACTORIES[name](threads=threads)
    if threads is not None:
        raise ValueError(
            f"backend {name!r} does not take a thread count; "
            f"threads applies to {_THREADED_BACKENDS}"
        )
    return _FACTORIES[name]()
