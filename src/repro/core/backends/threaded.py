"""The ``threaded`` backend: fused kernels tiled across a thread pool.

Every hot operation of the :class:`~repro.core.backends.fused.FusedBackend`
is elementwise — each output element depends only on the same-index input
elements — so a large call can be split into contiguous tiles and executed
concurrently.  NumPy's ufuncs release the GIL while they run, which is
where the multi-core win comes from without any compiled dependency.

Design points:

- **one fused shard per tile** — ``FusedBackend`` holds mutable scratch and
  is not thread-safe, so each tile index owns a private instance whose
  scratch pool stays warm across calls (the shards register themselves
  with the global scratch accounting; this wrapper deliberately does not,
  to avoid double counting);
- **tiling threshold** — arrays below :data:`MIN_TILE_ELEMENTS` per tile
  run inline on shard 0; thread dispatch would cost more than it saves;
- **per-call thread pool** — threads are spawned per call instead of kept
  alive on the instance, so a sweep constructing many short-lived contexts
  never accumulates idle pool threads.  Thread start-up is microseconds
  against the multi-millisecond calls that reach the tiled path;
- **bit identity is structural** — tiles see exactly the element values the
  full-array call would, and the fused kernels are contractually
  bit-identical to reference on any operand subset, so concatenated tile
  results equal the untiled result bit for bit (asserted by the parity
  harness with a forced tile width in ``tests/test_parallel.py``).

Thread count comes from :func:`repro.core.backends.threads.resolve_thread_count`:
explicit argument, else 1 inside runner pool workers, else ``REPRO_THREADS``,
else the usable CPU count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..adder import DEFAULT_THRESHOLD
from ..floatops import format_for_dtype
from .base import ComputeBackend
from .fused import FusedBackend
from .threads import resolve_thread_count

__all__ = ["ThreadedFusedBackend", "MIN_TILE_ELEMENTS"]

#: Smallest per-tile element count worth a thread dispatch.
MIN_TILE_ELEMENTS = 1 << 15


class ThreadedFusedBackend(ComputeBackend):
    """Fused kernels tiled over a ``ThreadPoolExecutor``."""

    name = "threaded"

    def __init__(self, threads: int | None = None):
        self.threads = resolve_thread_count(threads)
        self._min_tile = MIN_TILE_ELEMENTS
        self._shards = [FusedBackend()]

    # ------------------------------------------------------------------
    # Scratch accounting (aggregated over shards)
    # ------------------------------------------------------------------
    def scratch_nbytes(self) -> int:
        return sum(shard.scratch_nbytes() for shard in self._shards)

    def release_scratch(self) -> int:
        return sum(shard.release_scratch() for shard in self._shards)

    # ------------------------------------------------------------------
    # Tiling machinery
    # ------------------------------------------------------------------
    def _shard(self, index: int) -> FusedBackend:
        while len(self._shards) <= index:
            self._shards.append(FusedBackend())
        return self._shards[index]

    def _operands(self, arrays, fmt):
        arrays = [np.asarray(x, dtype=fmt.dtype) for x in arrays]
        return np.broadcast_arrays(*arrays) if len(arrays) > 1 else arrays

    def _tile_count(self, n: int) -> int:
        tiles = min(self.threads, n // self._min_tile)
        return tiles if tiles > 1 else 1

    @staticmethod
    def _bounds(n: int, tiles: int) -> list:
        base, rem = divmod(n, tiles)
        bounds = [0]
        for i in range(tiles):
            bounds.append(bounds[-1] + base + (1 if i < rem else 0))
        return bounds

    def _run(self, arrays, fmt, call) -> np.ndarray:
        """Run ``call(shard, tile_arrays) -> tile_result`` over tiles."""
        shape = arrays[0].shape
        n = int(arrays[0].size)
        tiles = self._tile_count(n)
        if tiles == 1:
            return call(self._shard(0), arrays)
        flats = [np.ascontiguousarray(x.reshape(-1)) for x in arrays]
        out = np.empty(n, dtype=fmt.dtype)
        bounds = self._bounds(n, tiles)

        def task(i):
            lo, hi = bounds[i], bounds[i + 1]
            out[lo:hi] = call(self._shard(i), [f[lo:hi] for f in flats])

        with ThreadPoolExecutor(max_workers=tiles) as pool:
            list(pool.map(task, range(tiles)))
        return out.reshape(shape)

    def _run_batch(self, arrays, fmt, n_configs: int, call) -> list:
        """Tile a batched call; ``call`` returns one array per config."""
        shape = arrays[0].shape
        n = int(arrays[0].size)
        tiles = self._tile_count(n)
        if tiles == 1:
            return call(self._shard(0), arrays)
        flats = [np.ascontiguousarray(x.reshape(-1)) for x in arrays]
        outs = [np.empty(n, dtype=fmt.dtype) for _ in range(n_configs)]
        bounds = self._bounds(n, tiles)

        def task(i):
            lo, hi = bounds[i], bounds[i + 1]
            results = call(self._shard(i), [f[lo:hi] for f in flats])
            for out, piece in zip(outs, results):
                out[lo:hi] = piece

        with ThreadPoolExecutor(max_workers=tiles) as pool:
            list(pool.map(task, range(tiles)))
        return [out.reshape(shape) for out in outs]

    # ------------------------------------------------------------------
    # FPU ops
    # ------------------------------------------------------------------
    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((a, b), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_add(
            t[0], t[1], threshold=threshold, dtype=dtype))

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add(a, -b, threshold=threshold, dtype=dtype)

    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((a, b), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_multiply(
            t[0], t[1], dtype=dtype))

    def configurable_multiply(self, a, b, config, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((a, b), fmt)
        return self._run(ops, fmt, lambda be, t: be.configurable_multiply(
            t[0], t[1], config, dtype=dtype))

    def truncated_multiply(self, a, b, truncation: int = 0, dtype=np.float32,
                           rounding: bool = True) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((a, b), fmt)
        return self._run(ops, fmt, lambda be, t: be.truncated_multiply(
            t[0], t[1], truncation, dtype=dtype, rounding=rounding))

    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((a, b, c), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_fma(
            t[0], t[1], t[2], threshold=threshold, dtype=dtype))

    # ------------------------------------------------------------------
    # Batched entry points: tile elements, every config per tile
    # ------------------------------------------------------------------
    def imprecise_add_batch(self, a, b, thresholds,
                            dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        thresholds = [int(th) for th in thresholds]
        if not thresholds:
            return []
        ops = self._operands((a, b), fmt)
        return self._run_batch(ops, fmt, len(thresholds),
                               lambda be, t: be.imprecise_add_batch(
                                   t[0], t[1], thresholds, dtype=dtype))

    def imprecise_subtract_batch(self, a, b, thresholds,
                                 dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add_batch(a, -b, thresholds, dtype=dtype)

    def imprecise_fma_batch(self, a, b, c, thresholds,
                            dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        thresholds = [int(th) for th in thresholds]
        if not thresholds:
            return []
        ops = self._operands((a, b, c), fmt)
        return self._run_batch(ops, fmt, len(thresholds),
                               lambda be, t: be.imprecise_fma_batch(
                                   t[0], t[1], t[2], thresholds, dtype=dtype))

    def configurable_multiply_batch(self, a, b, configs,
                                    dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        configs = list(configs)
        if not configs:
            return []
        ops = self._operands((a, b), fmt)
        return self._run_batch(ops, fmt, len(configs),
                               lambda be, t: be.configurable_multiply_batch(
                                   t[0], t[1], configs, dtype=dtype))

    def truncated_multiply_batch(self, a, b, truncations, dtype=np.float32,
                                 rounding=True) -> list:
        fmt = format_for_dtype(dtype)
        truncations = [int(t) for t in truncations]
        if not truncations:
            return []
        ops = self._operands((a, b), fmt)
        return self._run_batch(ops, fmt, len(truncations),
                               lambda be, t: be.truncated_multiply_batch(
                                   t[0], t[1], truncations, dtype=dtype,
                                   rounding=rounding))

    # ------------------------------------------------------------------
    # SFU ops (elementwise: same tiling applies)
    # ------------------------------------------------------------------
    def imprecise_reciprocal(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((x,), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_reciprocal(
            t[0], dtype=dtype))

    def imprecise_rsqrt(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((x,), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_rsqrt(
            t[0], dtype=dtype))

    def imprecise_sqrt(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((x,), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_sqrt(
            t[0], dtype=dtype))

    def imprecise_log2(self, x, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((x,), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_log2(
            t[0], dtype=dtype))

    def imprecise_divide(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        ops = self._operands((a, b), fmt)
        return self._run(ops, fmt, lambda be, t: be.imprecise_divide(
            t[0], t[1], dtype=dtype))
