"""Thread-count policy for the multi-core backends.

The parallel backends (``threaded``, ``numba-parallel``) split elementwise
work across OS threads.  How many threads they may use is a *policy*
question that has to compose with the process-level parallelism of
:class:`~repro.runtime.runner.ExperimentRunner`: a sweep already fans out
over a ``ProcessPoolExecutor`` sized to the machine, so a parallel backend
inside a pool worker must not multiply that out into ``workers x threads``
oversubscription.

Resolution order (first match wins):

1. an explicit ``threads=`` argument (``get_backend(..., threads=N)``,
   ``IHWConfig.backend_threads``, ``repro bench --threads``);
2. the worker pin: inside a runner pool worker every backend gets exactly
   one thread (:func:`pin_worker_threads`, installed by the pool
   initializer);
3. the ``REPRO_THREADS`` environment variable;
4. the usable CPU count (affinity-aware).

Environment- and machine-derived counts are clamped to the usable CPU
count; an *explicit* request is honored as given (callers like ``repro
bench --threads`` enforce their own oversubscription refusal), which also
lets tests exercise real multi-tile execution on small CI machines.
"""

from __future__ import annotations

import os

__all__ = [
    "ENV_VAR",
    "cpu_count",
    "resolve_thread_count",
    "pin_worker_threads",
    "worker_pinned",
    "reset",
]

#: Environment variable selecting the process-wide default thread count.
ENV_VAR = "REPRO_THREADS"

# True inside a runner pool worker; set by the pool initializer so nested
# backend parallelism collapses to one thread per worker process.
_WORKER_PINNED = False


def cpu_count() -> int:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def pin_worker_threads() -> None:
    """Mark this process as a pool worker: backends default to 1 thread.

    Installed as (part of) the runner's ``ProcessPoolExecutor``
    initializer.  An explicit ``threads=`` argument still wins — the pin
    only replaces the *default*, so a caller who deliberately nests
    parallelism can, but nobody does so by accident.
    """
    global _WORKER_PINNED
    _WORKER_PINNED = True


def worker_pinned() -> bool:
    """Whether this process runs as a runner pool worker."""
    return _WORKER_PINNED


def reset() -> None:
    """Clear the worker pin (tests; a fresh interpreter starts unpinned)."""
    global _WORKER_PINNED
    _WORKER_PINNED = False


def _env_threads() -> int | None:
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_VAR}={raw!r} is not an integer thread count"
        ) from None
    if value < 1:
        raise ValueError(f"{ENV_VAR} must be >= 1, got {value}")
    return value


def resolve_thread_count(requested: int | None = None) -> int:
    """Resolve a thread-count request to a concrete, clamped count.

    ``requested`` is an explicit per-call/per-config choice or ``None`` to
    defer to the worker pin, then ``REPRO_THREADS``, then the CPU count.
    Deferred resolutions are clamped to ``[1, cpu_count()]``; an explicit
    request is only validated (``>= 1``), not clamped.
    """
    limit = cpu_count()
    if requested is not None:
        requested = int(requested)
        if requested < 1:
            raise ValueError(f"threads must be >= 1, got {requested}")
        return requested
    if _WORKER_PINNED:
        return 1
    env = _env_threads()
    if env is not None:
        return min(env, limit)
    return limit
