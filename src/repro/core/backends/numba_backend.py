"""Optional ``numba`` backend: JIT-compiled scalar integer datapaths.

When numba is installed, the threshold adder and the Table-1 multiplier run
as ``@njit`` scalar loops over the raw IEEE bit patterns — the same integer
datapath as the reference, one element at a time, with no intermediate
arrays at all.  Every other operation inherits the reference
implementation from :class:`~repro.core.backends.base.ComputeBackend`.

When numba is *not* installed the module still imports cleanly;
constructing :class:`NumbaBackend` raises
:class:`~repro.core.backends.BackendUnavailableError`, and the registry
reports the backend as registered-but-unavailable.  Nothing in this
repository requires numba — CI exercises this backend on a single matrix
leg only.
"""

from __future__ import annotations

import numpy as np

from ..adder import DEFAULT_THRESHOLD, max_threshold
from ..floatops import format_for_dtype
from .base import ComputeBackend

__all__ = ["NumbaBackend", "NUMBA_AVAILABLE"]

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on the no-numba CI leg
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Stand-in decorator so the kernels below still parse."""
        def wrap(fn):
            return fn
        return wrap


@njit(cache=False)
def _add_kernel(bits_a, bits_b, out, p, exponent_bits, threshold, nan_bits):
    emask = (np.int64(1) << exponent_bits) - 1
    fmask = (np.int64(1) << p) - 1
    implicit = np.int64(1) << p
    sign_shift = exponent_bits + p
    guard = threshold
    max_exp = emask - 1
    keep_mask = ~((np.int64(1) << (p + guard - threshold)) - 1)
    inf_exp = emask << p
    for i in range(bits_a.size):
        ba = bits_a[i]
        bb = bits_b[i]
        sa = ba >> sign_shift
        sb = bb >> sign_shift
        ea = (ba >> p) & emask
        eb = (bb >> p) & emask
        fa = ba & fmask
        fb = bb & fmask
        a_special = ea == emask
        b_special = eb == emask
        if a_special or b_special:
            a_nan = a_special and fa != 0
            b_nan = b_special and fb != 0
            a_inf = a_special and fa == 0
            b_inf = b_special and fb == 0
            if a_nan or b_nan or (a_inf and b_inf and sa != sb):
                out[i] = nan_bits
            elif a_inf:
                out[i] = (sa << sign_shift) | inf_exp
            else:
                out[i] = (sb << sign_shift) | inf_exp
            continue
        # Swap so x has the larger magnitude (ties keep a in x).
        if (ba & ((np.int64(1) << sign_shift) - 1)) >= (
            bb & ((np.int64(1) << sign_shift) - 1)
        ):
            ex, fx, sx, xz = ea, fa, sa, ea == 0
            ey, fy, sy, yz = eb, fb, sb, eb == 0
        else:
            ex, fx, sx, xz = eb, fb, sb, eb == 0
            ey, fy, sy, yz = ea, fa, sa, ea == 0
        d = ex - ey
        mx = np.int64(0) if xz else (implicit + fx) << guard
        my = np.int64(0) if yz else (implicit + fy) << guard
        shift = d if d < p + guard + 1 else p + guard + 1
        my = (my >> shift) & keep_mask
        if d > threshold:
            my = np.int64(0)
        total = mx - my if sx != sy else mx + my
        if total < 0:
            total = -total
        if total == 0:
            # Exact cancellation yields +0.
            out[i] = 0
            continue
        msb = np.int64(0)
        t = total
        while t > 1:
            t >>= 1
            msb += 1
        norm_shift = msb - (p + guard)
        ez = ex + norm_shift
        if norm_shift < 0:
            mant = total << (-norm_shift)
        else:
            mant = total >> norm_shift
        fz = (mant >> guard) & fmask
        if ez > max_exp:
            out[i] = (sx << sign_shift) | inf_exp
        elif ez < 1:
            out[i] = sx << sign_shift  # subnormal result flushes to +-0
        else:
            out[i] = (sx << sign_shift) | (ez << p) | fz


@njit(cache=False)
def _mul_kernel(bits_a, bits_b, out, p, exponent_bits, bias, nan_bits):
    emask = (np.int64(1) << exponent_bits) - 1
    fmask = (np.int64(1) << p) - 1
    sign_shift = exponent_bits + p
    max_exp = emask - 1
    inf_exp = emask << p
    for i in range(bits_a.size):
        ba = bits_a[i]
        bb = bits_b[i]
        ea = (ba >> p) & emask
        eb = (bb >> p) & emask
        fa = ba & fmask
        fb = bb & fmask
        sz = (ba >> sign_shift) ^ (bb >> sign_shift)
        a_nan = ea == emask and fa != 0
        b_nan = eb == emask and fb != 0
        a_inf = ea == emask and fa == 0
        b_inf = eb == emask and fb == 0
        a_zero = ea == 0  # true zero or flushed subnormal
        b_zero = eb == 0
        if a_nan or b_nan or (a_inf and b_zero) or (b_inf and a_zero):
            out[i] = nan_bits
            continue
        if a_inf or b_inf:
            out[i] = (sz << sign_shift) | inf_exp
            continue
        if a_zero or b_zero:
            out[i] = sz << sign_shift
            continue
        frac_sum = fa + fb
        carry = frac_sum >> p
        if carry != 0:
            fz = (frac_sum & fmask) >> 1
        else:
            fz = frac_sum
        fz &= fmask
        ez = ea + eb - bias + carry
        if ez > max_exp:
            out[i] = (sz << sign_shift) | inf_exp
        elif ez < 1:
            out[i] = sz << sign_shift
        else:
            out[i] = (sz << sign_shift) | (ez << p) | fz


class NumbaBackend(ComputeBackend):
    """Scalar JIT datapaths for add/sub/mul/fma; reference for the rest."""

    name = "numba"

    def __init__(self):
        if not NUMBA_AVAILABLE:
            from . import BackendUnavailableError

            raise BackendUnavailableError(
                "the 'numba' backend requires the numba package; "
                "install numba or select REPRO_BACKEND=reference|fused"
            )

    @staticmethod
    def _bits(values, fmt):
        """Flat int64 bit patterns of the broadcast operands."""
        return np.ascontiguousarray(values.view(fmt.uint).reshape(-1)).astype(
            np.int64
        )

    @staticmethod
    def _nan_bits(fmt) -> int:
        return int(np.asarray(np.nan, fmt.dtype).view(fmt.uint))

    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        if not 1 <= threshold <= max_threshold(dtype):
            raise ValueError(
                f"threshold must be in [1, {max_threshold(dtype)}] for "
                f"{fmt.name}, got {threshold}"
            )
        a = np.asarray(a, dtype=fmt.dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        a, b = np.broadcast_arrays(a, b)
        out = np.empty(a.size, dtype=np.int64)
        _add_kernel(self._bits(a, fmt), self._bits(b, fmt), out,
                    fmt.mantissa_bits, fmt.exponent_bits, threshold,
                    self._nan_bits(fmt))
        return out.astype(fmt.uint).view(fmt.dtype).reshape(a.shape)

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add(a, -b, threshold=threshold, dtype=dtype)

    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        a = np.asarray(a, dtype=fmt.dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        a, b = np.broadcast_arrays(a, b)
        out = np.empty(a.size, dtype=np.int64)
        _mul_kernel(self._bits(a, fmt), self._bits(b, fmt), out,
                    fmt.mantissa_bits, fmt.exponent_bits, fmt.bias,
                    self._nan_bits(fmt))
        return out.astype(fmt.uint).view(fmt.dtype).reshape(a.shape)

    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        product = self.imprecise_multiply(a, b, dtype=dtype)
        return self.imprecise_add(product, c, threshold=threshold, dtype=dtype)
