"""Optional ``numba`` backends: JIT-compiled scalar integer datapaths.

When numba is installed, the hot unit operations run as ``@njit`` scalar
loops over the raw IEEE bit patterns — the same integer datapath as the
reference, one element at a time, with no intermediate arrays at all.
Two backends share the kernel bodies:

- ``numba`` — serial loops (:class:`NumbaBackend`);
- ``numba-parallel`` — the same per-element helpers inside
  ``@njit(parallel=True)`` / ``prange`` loops (:class:`NumbaParallelBackend`),
  including 2-D ``*_batch`` kernels that parallelize over elements with an
  inner per-configuration loop, so one field decode serves every config.

Every per-element helper mirrors its reference unit operation for
operation, in the same order, on the same float64 dyadic intermediates —
that (not testing alone) is what makes the kernels bit-identical; the
parity harness then asserts it.  Anything not overridden inherits the
reference implementation from
:class:`~repro.core.backends.base.ComputeBackend`.

First construction of a backend runs a one-time tiny-array warm-up per
kernel, so JIT compilation happens at a predictable time instead of
polluting the first timed call; per-kernel compile seconds are kept on the
class (``compile_seconds``) and published by ``repro bench``.

When numba is *not* installed the module still imports cleanly (the
kernels stay plain Python functions, which is how the no-numba test leg
exercises their logic); constructing either backend raises
:class:`~repro.core.backends.BackendUnavailableError`, and the registry
reports them as registered-but-unavailable.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..adder import DEFAULT_THRESHOLD, max_threshold
from ..configurable import MultiplierConfig
from ..floatops import format_for_dtype
from .base import ComputeBackend, _rounding_flags
from .threads import resolve_thread_count

__all__ = ["NumbaBackend", "NumbaParallelBackend", "NUMBA_AVAILABLE"]

try:
    from numba import config as _numba_config
    from numba import njit, prange, set_num_threads

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on the no-numba CI leg
    NUMBA_AVAILABLE = False
    _numba_config = None
    prange = range

    def njit(*args, **kwargs):
        """Stand-in decorator so the kernels below still parse."""
        def wrap(fn):
            return fn
        return wrap

    def set_num_threads(n):
        return None


def _numba_thread_limit() -> int:
    """Upper bound numba accepts for ``set_num_threads``."""
    if _numba_config is None:
        return 1
    return int(_numba_config.NUMBA_NUM_THREADS)


# ----------------------------------------------------------------------
# Per-element datapaths.  Each helper takes and returns int64 bit
# patterns; binary64 patterns with the sign bit set ride along as
# negative int64 values (two's complement), which every shift/mask below
# is written to tolerate — exactly like the original kernels.
# ----------------------------------------------------------------------
@njit(cache=False)
def _msb64(v):
    """MSB bit index of a positive int64 value."""
    msb = np.int64(0)
    t = v
    while t > 1:
        t >>= 1
        msb += 1
    return msb


@njit(cache=False)
def _add_one(ba, bb, p, exponent_bits, threshold, nan_bits):
    emask = (np.int64(1) << exponent_bits) - 1
    fmask = (np.int64(1) << p) - 1
    implicit = np.int64(1) << p
    sign_shift = exponent_bits + p
    guard = threshold
    max_exp = emask - 1
    keep_mask = ~((np.int64(1) << (p + guard - threshold)) - 1)
    inf_exp = emask << p
    sa = ba >> sign_shift
    sb = bb >> sign_shift
    ea = (ba >> p) & emask
    eb = (bb >> p) & emask
    fa = ba & fmask
    fb = bb & fmask
    a_special = ea == emask
    b_special = eb == emask
    if a_special or b_special:
        a_nan = a_special and fa != 0
        b_nan = b_special and fb != 0
        a_inf = a_special and fa == 0
        b_inf = b_special and fb == 0
        if a_nan or b_nan or (a_inf and b_inf and sa != sb):
            return nan_bits
        if a_inf:
            return (sa << sign_shift) | inf_exp
        return (sb << sign_shift) | inf_exp
    # Swap so x has the larger magnitude (ties keep a in x).
    if (ba & ((np.int64(1) << sign_shift) - 1)) >= (
        bb & ((np.int64(1) << sign_shift) - 1)
    ):
        ex, fx, sx, xz = ea, fa, sa, ea == 0
        ey, fy, sy, yz = eb, fb, sb, eb == 0
    else:
        ex, fx, sx, xz = eb, fb, sb, eb == 0
        ey, fy, sy, yz = ea, fa, sa, ea == 0
    d = ex - ey
    mx = np.int64(0) if xz else (implicit + fx) << guard
    my = np.int64(0) if yz else (implicit + fy) << guard
    shift = d if d < p + guard + 1 else p + guard + 1
    my = (my >> shift) & keep_mask
    if d > threshold:
        my = np.int64(0)
    total = mx - my if sx != sy else mx + my
    if total < 0:
        total = -total
    if total == 0:
        # Exact cancellation yields +0.
        return np.int64(0)
    msb = _msb64(total)
    norm_shift = msb - (p + guard)
    ez = ex + norm_shift
    if norm_shift < 0:
        mant = total << (-norm_shift)
    else:
        mant = total >> norm_shift
    fz = (mant >> guard) & fmask
    if ez > max_exp:
        return (sx << sign_shift) | inf_exp
    if ez < 1:
        return sx << sign_shift  # subnormal result flushes to +-0
    return (sx << sign_shift) | (ez << p) | fz


@njit(cache=False)
def _mul_one(ba, bb, p, exponent_bits, bias, nan_bits):
    emask = (np.int64(1) << exponent_bits) - 1
    fmask = (np.int64(1) << p) - 1
    sign_shift = exponent_bits + p
    max_exp = emask - 1
    inf_exp = emask << p
    ea = (ba >> p) & emask
    eb = (bb >> p) & emask
    fa = ba & fmask
    fb = bb & fmask
    sz = (ba >> sign_shift) ^ (bb >> sign_shift)
    a_nan = ea == emask and fa != 0
    b_nan = eb == emask and fb != 0
    a_inf = ea == emask and fa == 0
    b_inf = eb == emask and fb == 0
    a_zero = ea == 0  # true zero or flushed subnormal
    b_zero = eb == 0
    if a_nan or b_nan or (a_inf and b_zero) or (b_inf and a_zero):
        return nan_bits
    if a_inf or b_inf:
        return (sz << sign_shift) | inf_exp
    if a_zero or b_zero:
        return sz << sign_shift
    frac_sum = fa + fb
    carry = frac_sum >> p
    if carry != 0:
        fz = (frac_sum & fmask) >> 1
    else:
        fz = frac_sum
    fz &= fmask
    ez = ea + eb - bias + carry
    if ez > max_exp:
        return (sz << sign_shift) | inf_exp
    if ez < 1:
        return sz << sign_shift
    return (sz << sign_shift) | (ez << p) | fz


@njit(cache=False)
def _mitchell_one(ba, bb, p, exponent_bits, bias, nan_bits, log_path,
                  truncation):
    """Accuracy-configurable (Mitchell) multiply of one element.

    Mirrors ``configurable_multiply``: the float64 datapath computes the
    same dyadic intermediates in the same order, so results agree bit for
    bit even where a float64 addition rounds (binary64 operands).
    """
    emask = (np.int64(1) << exponent_bits) - 1
    fmask = (np.int64(1) << p) - 1
    sign_shift = exponent_bits + p
    max_exp = emask - 1
    inf_exp = emask << p
    ea = (ba >> p) & emask
    eb = (bb >> p) & emask
    fa = ba & fmask
    fb = bb & fmask
    sz = (ba >> sign_shift) ^ (bb >> sign_shift)
    a_nan = ea == emask and fa != 0
    b_nan = eb == emask and fb != 0
    a_inf = ea == emask and fa == 0
    b_inf = eb == emask and fb == 0
    a_zero = ea == 0  # true zero or flushed subnormal
    b_zero = eb == 0
    if a_nan or b_nan or (a_inf and b_zero) or (b_inf and a_zero):
        return nan_bits
    if a_inf or b_inf:
        return (sz << sign_shift) | inf_exp
    if a_zero or b_zero:
        return sz << sign_shift
    # Operand truncation before the MA datapath.
    if truncation > 0:
        cut = ~((np.int64(1) << truncation) - 1)
        fa = fa & cut
        fb = fb & cut
    # Exact dyadic mantissa fractions in float64.
    ma = math.ldexp(float(fa), int(-p))
    mb = math.ldexp(float(fb), int(-p))
    if log_path != 0:
        # MA of (1+Ma)(1+Mb): k = 0, x = M exactly.
        x_sum = ma + mb
        if x_sum < 1.0:
            mant = 1.0 + x_sum
        else:
            mant = 2.0 * x_sum
    else:
        # Cross term MA(Ma, Mb); a zero fraction makes it zero.
        if fa == 0 or fb == 0:
            cross = 0.0
        else:
            m1 = _msb64(fa)
            m2 = _msb64(fb)
            x1 = math.ldexp(float(fa), int(-m1)) - 1.0
            x2 = math.ldexp(float(fb), int(-m2)) - 1.0
            x_sum = x1 + x2
            scale = math.ldexp(1.0, int(m1 + m2 - 2 * p))
            if x_sum < 1.0:
                cross = scale * (1.0 + x_sum)
            else:
                cross = 2.0 * scale * x_sum
        mant = 1.0 + ma + mb + cross
    carry = np.int64(0)
    if mant >= 2.0:
        carry = np.int64(1)
        mant = mant * 0.5
    fz = np.int64(np.floor((mant - 1.0) * math.ldexp(1.0, int(p))))
    if fz < 0:
        fz = np.int64(0)
    if fz > fmask:
        fz = fmask
    ez = ea + eb - bias + carry
    if ez > max_exp:
        return (sz << sign_shift) | inf_exp
    if ez < 1:
        return sz << sign_shift
    return (sz << sign_shift) | (ez << p) | fz


@njit(cache=False)
def _bt_one(ba, bb, p, exponent_bits, bias, nan_bits, truncation, rounding):
    """Bit-truncation baseline (``bt_N``) multiply of one element.

    Mirrors ``truncated_multiply``: subnormal flush, operand mantissa
    reduction on the raw bits (round-half-up or truncate, specials pass
    through), exact float64 product, round to the target format, flush.
    The NaN / inf x 0 branches reproduce what the reference's float64
    multiply produces in hardware (first-operand NaN propagation with the
    quiet bit set; the signed "indefinite" NaN for inf x 0).
    """
    emask = (np.int64(1) << exponent_bits) - 1
    fmask = (np.int64(1) << p) - 1
    sign_shift = exponent_bits + p
    quiet = np.int64(1) << (p - 1)
    inf_exp = emask << p
    sa = ba >> sign_shift
    sb = bb >> sign_shift
    sz = sa ^ sb
    ea = (ba >> p) & emask
    eb = (bb >> p) & emask
    # Subnormal operands flush to the signed zero pattern.
    if ea == 0:
        ba = sa << sign_shift
    if eb == 0:
        bb = sb << sign_shift
    # Operand mantissa reduction on the raw bit pattern; carries propagate
    # into the exponent naturally (possibly up to infinity).
    if truncation > 0:
        mask = ~((np.int64(1) << truncation) - 1)
        if ea != emask:
            if rounding != 0:
                ba = ba + (np.int64(1) << (truncation - 1))
            ba = ba & mask
        if eb != emask:
            if rounding != 0:
                bb = bb + (np.int64(1) << (truncation - 1))
            bb = bb & mask
    ea = (ba >> p) & emask
    eb = (bb >> p) & emask
    fa = ba & fmask
    fb = bb & fmask
    if ea == emask and fa != 0:
        return ba | quiet
    if eb == emask and fb != 0:
        return bb | quiet
    a_inf = ea == emask
    b_inf = eb == emask
    a_zero = ea == 0 and fa == 0
    b_zero = eb == 0 and fb == 0
    if (a_inf and b_zero) or (b_inf and a_zero):
        # inf * 0 in float64 is the hardware indefinite: -NaN(quiet, 0).
        return (np.int64(-1) << sign_shift) | nan_bits
    if a_inf or b_inf:
        return (sz << sign_shift) | inf_exp
    if a_zero or b_zero:
        return sz << sign_shift
    # Exact float64 magnitudes of the reduced operands.
    va = math.ldexp(float((np.int64(1) << p) + fa), int(ea - bias - p))
    vb = math.ldexp(float((np.int64(1) << p) + fb), int(eb - bias - p))
    product = va * vb
    if p == 23:
        product = float(np.float32(product))  # round to binary32
    if math.isinf(product):
        return (sz << sign_shift) | inf_exp
    if product < math.ldexp(1.0, int(1 - bias)):
        return sz << sign_shift  # zero or subnormal result flushes
    fr, e = math.frexp(product)
    ez = np.int64(e) - 1 + bias
    fz = np.int64((fr * 2.0 - 1.0) * math.ldexp(1.0, int(p)))
    return (sz << sign_shift) | (ez << p) | fz


# ----------------------------------------------------------------------
# Serial kernels (the ``numba`` backend)
# ----------------------------------------------------------------------
@njit(cache=False)
def _add_kernel(bits_a, bits_b, out, p, exponent_bits, threshold, nan_bits):
    for i in range(bits_a.size):
        out[i] = _add_one(bits_a[i], bits_b[i], p, exponent_bits, threshold,
                          nan_bits)


@njit(cache=False)
def _mul_kernel(bits_a, bits_b, out, p, exponent_bits, bias, nan_bits):
    for i in range(bits_a.size):
        out[i] = _mul_one(bits_a[i], bits_b[i], p, exponent_bits, bias,
                          nan_bits)


@njit(cache=False)
def _mitchell_kernel(bits_a, bits_b, out, p, exponent_bits, bias, nan_bits,
                     log_path, truncation):
    for i in range(bits_a.size):
        out[i] = _mitchell_one(bits_a[i], bits_b[i], p, exponent_bits, bias,
                               nan_bits, log_path, truncation)


@njit(cache=False)
def _bt_kernel(bits_a, bits_b, out, p, exponent_bits, bias, nan_bits,
               truncation, rounding):
    for i in range(bits_a.size):
        out[i] = _bt_one(bits_a[i], bits_b[i], p, exponent_bits, bias,
                         nan_bits, truncation, rounding)


# ----------------------------------------------------------------------
# Parallel kernels (the ``numba-parallel`` backend): prange over elements;
# the batch variants add an inner per-configuration loop so one bit decode
# serves the whole element x config product.
# ----------------------------------------------------------------------
@njit(cache=False, parallel=True)
def _add_kernel_par(bits_a, bits_b, out, p, exponent_bits, threshold,
                    nan_bits):
    for i in prange(bits_a.size):
        out[i] = _add_one(bits_a[i], bits_b[i], p, exponent_bits, threshold,
                          nan_bits)


@njit(cache=False, parallel=True)
def _mul_kernel_par(bits_a, bits_b, out, p, exponent_bits, bias, nan_bits):
    for i in prange(bits_a.size):
        out[i] = _mul_one(bits_a[i], bits_b[i], p, exponent_bits, bias,
                          nan_bits)


@njit(cache=False, parallel=True)
def _mitchell_kernel_par(bits_a, bits_b, out, p, exponent_bits, bias,
                         nan_bits, log_path, truncation):
    for i in prange(bits_a.size):
        out[i] = _mitchell_one(bits_a[i], bits_b[i], p, exponent_bits, bias,
                               nan_bits, log_path, truncation)


@njit(cache=False, parallel=True)
def _bt_kernel_par(bits_a, bits_b, out, p, exponent_bits, bias, nan_bits,
                   truncation, rounding):
    for i in prange(bits_a.size):
        out[i] = _bt_one(bits_a[i], bits_b[i], p, exponent_bits, bias,
                         nan_bits, truncation, rounding)


@njit(cache=False, parallel=True)
def _add_batch_kernel_par(bits_a, bits_b, out, p, exponent_bits, thresholds,
                          nan_bits):
    n_cfg = thresholds.size
    for i in prange(bits_a.size):
        ba = bits_a[i]
        bb = bits_b[i]
        for j in range(n_cfg):
            out[j, i] = _add_one(ba, bb, p, exponent_bits, thresholds[j],
                                 nan_bits)


@njit(cache=False, parallel=True)
def _mitchell_batch_kernel_par(bits_a, bits_b, out, p, exponent_bits, bias,
                               nan_bits, log_paths, truncations):
    n_cfg = truncations.size
    for i in prange(bits_a.size):
        ba = bits_a[i]
        bb = bits_b[i]
        for j in range(n_cfg):
            out[j, i] = _mitchell_one(ba, bb, p, exponent_bits, bias,
                                      nan_bits, log_paths[j], truncations[j])


@njit(cache=False, parallel=True)
def _bt_batch_kernel_par(bits_a, bits_b, out, p, exponent_bits, bias,
                         nan_bits, truncations, roundings):
    n_cfg = truncations.size
    for i in prange(bits_a.size):
        ba = bits_a[i]
        bb = bits_b[i]
        for j in range(n_cfg):
            out[j, i] = _bt_one(ba, bb, p, exponent_bits, bias, nan_bits,
                                truncations[j], roundings[j])


class NumbaBackend(ComputeBackend):
    """Serial JIT datapaths for the hot ops; reference for the rest."""

    name = "numba"

    #: One-time warm-up guard and per-kernel compile seconds, per class
    #: (the parallel subclass shadows both with its own).
    _warmed = False
    compile_seconds: dict = {}

    def __init__(self):
        if not NUMBA_AVAILABLE:
            from . import BackendUnavailableError

            raise BackendUnavailableError(
                f"the {self.name!r} backend requires the numba package; "
                "install numba or select REPRO_BACKEND=reference|fused|threaded"
            )
        type(self)._warm_up()

    # ------------------------------------------------------------------
    # JIT warm-up
    # ------------------------------------------------------------------
    @classmethod
    def _warm_kernels(cls):
        """(name, thunk) pairs compiling every kernel this class uses.

        All bit arrays are int64 regardless of dtype and the remaining
        arguments are Python ints, so one compilation per kernel covers
        both binary32 and binary64 calls.
        """
        za = np.zeros(2, dtype=np.int64)
        zb = np.zeros(2, dtype=np.int64)
        out = np.empty(2, dtype=np.int64)
        return [
            ("add", lambda: _add_kernel(za, zb, out, 23, 8, 8, 0)),
            ("mul", lambda: _mul_kernel(za, zb, out, 23, 8, 127, 0)),
            ("mul_mitchell",
             lambda: _mitchell_kernel(za, zb, out, 23, 8, 127, 0, 0, 0)),
            ("mul_truncated",
             lambda: _bt_kernel(za, zb, out, 23, 8, 127, 0, 0, 1)),
        ]

    @classmethod
    def _warm_up(cls):
        """Compile every kernel once on tiny arrays, recording the cost."""
        if cls._warmed:
            return
        seconds = {}
        for kernel_name, thunk in cls._warm_kernels():
            start = time.perf_counter()
            thunk()
            seconds[kernel_name] = time.perf_counter() - start
        cls.compile_seconds = seconds
        cls._warmed = True

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _bits(values, fmt):
        """Flat int64 bit patterns of the broadcast operands."""
        return np.ascontiguousarray(values.view(fmt.uint).reshape(-1)).astype(
            np.int64
        )

    @staticmethod
    def _nan_bits(fmt) -> int:
        return int(np.asarray(np.nan, fmt.dtype).view(fmt.uint))

    def _operands(self, a, b, fmt):
        a = np.asarray(a, dtype=fmt.dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return np.broadcast_arrays(a, b)

    @staticmethod
    def _check_threshold(threshold, dtype, fmt):
        if not 1 <= threshold <= max_threshold(dtype):
            raise ValueError(
                f"threshold must be in [1, {max_threshold(dtype)}] for "
                f"{fmt.name}, got {threshold}"
            )

    @staticmethod
    def _check_mitchell(config: MultiplierConfig, fmt) -> None:
        if config.truncation > fmt.mantissa_bits:
            raise ValueError(
                f"truncation {config.truncation} exceeds the "
                f"{fmt.mantissa_bits}-bit mantissa of {fmt.name}"
            )

    @staticmethod
    def _check_bt(truncation: int, fmt) -> None:
        if not 0 <= truncation <= fmt.mantissa_bits:
            raise ValueError(
                f"truncation must be in [0, {fmt.mantissa_bits}], "
                f"got {truncation}"
            )

    # Kernel selection points the parallel subclass overrides.
    _ADD_KERNEL = staticmethod(_add_kernel)
    _MUL_KERNEL = staticmethod(_mul_kernel)
    _MITCHELL_KERNEL = staticmethod(_mitchell_kernel)
    _BT_KERNEL = staticmethod(_bt_kernel)

    # ------------------------------------------------------------------
    # Scalar entry points
    # ------------------------------------------------------------------
    def imprecise_add(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        self._check_threshold(threshold, dtype, fmt)
        a, b = self._operands(a, b, fmt)
        out = np.empty(a.size, dtype=np.int64)
        self._ADD_KERNEL(self._bits(a, fmt), self._bits(b, fmt), out,
                         fmt.mantissa_bits, fmt.exponent_bits, threshold,
                         self._nan_bits(fmt))
        return out.astype(fmt.uint).view(fmt.dtype).reshape(a.shape)

    def imprecise_subtract(self, a, b, threshold: int = DEFAULT_THRESHOLD,
                           dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add(a, -b, threshold=threshold, dtype=dtype)

    def imprecise_multiply(self, a, b, dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        a, b = self._operands(a, b, fmt)
        out = np.empty(a.size, dtype=np.int64)
        self._MUL_KERNEL(self._bits(a, fmt), self._bits(b, fmt), out,
                         fmt.mantissa_bits, fmt.exponent_bits, fmt.bias,
                         self._nan_bits(fmt))
        return out.astype(fmt.uint).view(fmt.dtype).reshape(a.shape)

    def configurable_multiply(self, a, b, config: MultiplierConfig,
                              dtype=np.float32) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        self._check_mitchell(config, fmt)
        a, b = self._operands(a, b, fmt)
        out = np.empty(a.size, dtype=np.int64)
        self._MITCHELL_KERNEL(self._bits(a, fmt), self._bits(b, fmt), out,
                              fmt.mantissa_bits, fmt.exponent_bits, fmt.bias,
                              self._nan_bits(fmt),
                              1 if config.path == "log" else 0,
                              int(config.truncation))
        return out.astype(fmt.uint).view(fmt.dtype).reshape(a.shape)

    def truncated_multiply(self, a, b, truncation: int = 0, dtype=np.float32,
                           rounding: bool = True) -> np.ndarray:
        fmt = format_for_dtype(dtype)
        self._check_bt(truncation, fmt)
        a, b = self._operands(a, b, fmt)
        out = np.empty(a.size, dtype=np.int64)
        self._BT_KERNEL(self._bits(a, fmt), self._bits(b, fmt), out,
                        fmt.mantissa_bits, fmt.exponent_bits, fmt.bias,
                        self._nan_bits(fmt), int(truncation),
                        1 if rounding else 0)
        return out.astype(fmt.uint).view(fmt.dtype).reshape(a.shape)

    def imprecise_fma(self, a, b, c, threshold: int = DEFAULT_THRESHOLD,
                      dtype=np.float32) -> np.ndarray:
        product = self.imprecise_multiply(a, b, dtype=dtype)
        return self.imprecise_add(product, c, threshold=threshold, dtype=dtype)


class NumbaParallelBackend(NumbaBackend):
    """``prange`` datapaths over elements, batch kernels over element x config.

    ``threads`` resolves through
    :func:`~repro.core.backends.threads.resolve_thread_count` (explicit
    argument, else 1 inside runner pool workers, else ``REPRO_THREADS``,
    else the CPU count) and is applied with ``numba.set_num_threads``,
    clamped to numba's own launch-time maximum.
    """

    name = "numba-parallel"

    _warmed = False
    compile_seconds: dict = {}

    _ADD_KERNEL = staticmethod(_add_kernel_par)
    _MUL_KERNEL = staticmethod(_mul_kernel_par)
    _MITCHELL_KERNEL = staticmethod(_mitchell_kernel_par)
    _BT_KERNEL = staticmethod(_bt_kernel_par)

    def __init__(self, threads: int | None = None):
        super().__init__()
        self.threads = resolve_thread_count(threads)
        set_num_threads(min(self.threads, _numba_thread_limit()))

    @classmethod
    def _warm_kernels(cls):
        za = np.zeros(2, dtype=np.int64)
        zb = np.zeros(2, dtype=np.int64)
        out = np.empty(2, dtype=np.int64)
        out2 = np.empty((2, 2), dtype=np.int64)
        cfg = np.zeros(2, dtype=np.int64)
        ths = np.ones(2, dtype=np.int64)
        return [
            ("add", lambda: _add_kernel_par(za, zb, out, 23, 8, 8, 0)),
            ("mul", lambda: _mul_kernel_par(za, zb, out, 23, 8, 127, 0)),
            ("mul_mitchell",
             lambda: _mitchell_kernel_par(za, zb, out, 23, 8, 127, 0, 0, 0)),
            ("mul_truncated",
             lambda: _bt_kernel_par(za, zb, out, 23, 8, 127, 0, 0, 1)),
            ("add_batch",
             lambda: _add_batch_kernel_par(za, zb, out2, 23, 8, ths, 0)),
            ("mul_mitchell_batch",
             lambda: _mitchell_batch_kernel_par(za, zb, out2, 23, 8, 127, 0,
                                                cfg, cfg)),
            ("mul_truncated_batch",
             lambda: _bt_batch_kernel_par(za, zb, out2, 23, 8, 127, 0, cfg,
                                          ths)),
        ]

    # ------------------------------------------------------------------
    # Batched entry points: one decode, element x config in one launch
    # ------------------------------------------------------------------
    def _split(self, out2d, fmt, shape) -> list:
        return [row.astype(fmt.uint).view(fmt.dtype).reshape(shape)
                for row in out2d]

    def imprecise_add_batch(self, a, b, thresholds,
                            dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        thresholds = [int(th) for th in thresholds]
        if not thresholds:
            return []
        for th in thresholds:
            self._check_threshold(th, dtype, fmt)
        a, b = self._operands(a, b, fmt)
        out = np.empty((len(thresholds), a.size), dtype=np.int64)
        _add_batch_kernel_par(self._bits(a, fmt), self._bits(b, fmt), out,
                              fmt.mantissa_bits, fmt.exponent_bits,
                              np.asarray(thresholds, dtype=np.int64),
                              self._nan_bits(fmt))
        return self._split(out, fmt, a.shape)

    def imprecise_subtract_batch(self, a, b, thresholds,
                                 dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        b = np.asarray(b, dtype=fmt.dtype)
        return self.imprecise_add_batch(a, -b, thresholds, dtype=dtype)

    def imprecise_fma_batch(self, a, b, c, thresholds,
                            dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        thresholds = [int(th) for th in thresholds]
        if not thresholds:
            return []
        for th in thresholds:
            self._check_threshold(th, dtype, fmt)
        # The Table-1 product is threshold-invariant: compute its bit
        # patterns once and feed them straight to the batched adder.
        a, b = self._operands(a, b, fmt)
        product = np.empty(a.size, dtype=np.int64)
        _mul_kernel_par(self._bits(a, fmt), self._bits(b, fmt), product,
                        fmt.mantissa_bits, fmt.exponent_bits, fmt.bias,
                        self._nan_bits(fmt))
        c = np.broadcast_to(np.asarray(c, dtype=fmt.dtype), a.shape)
        out = np.empty((len(thresholds), a.size), dtype=np.int64)
        _add_batch_kernel_par(product, self._bits(c, fmt), out,
                              fmt.mantissa_bits, fmt.exponent_bits,
                              np.asarray(thresholds, dtype=np.int64),
                              self._nan_bits(fmt))
        return self._split(out, fmt, a.shape)

    def configurable_multiply_batch(self, a, b, configs,
                                    dtype=np.float32) -> list:
        fmt = format_for_dtype(dtype)
        configs = list(configs)
        if not configs:
            return []
        for cfg in configs:
            self._check_mitchell(cfg, fmt)
        a, b = self._operands(a, b, fmt)
        out = np.empty((len(configs), a.size), dtype=np.int64)
        log_paths = np.asarray(
            [1 if cfg.path == "log" else 0 for cfg in configs],
            dtype=np.int64)
        truncations = np.asarray([cfg.truncation for cfg in configs],
                                 dtype=np.int64)
        _mitchell_batch_kernel_par(self._bits(a, fmt), self._bits(b, fmt),
                                   out, fmt.mantissa_bits, fmt.exponent_bits,
                                   fmt.bias, self._nan_bits(fmt), log_paths,
                                   truncations)
        return self._split(out, fmt, a.shape)

    def truncated_multiply_batch(self, a, b, truncations, dtype=np.float32,
                                 rounding=True) -> list:
        fmt = format_for_dtype(dtype)
        truncations = [int(t) for t in truncations]
        roundings = _rounding_flags(rounding, len(truncations))
        if not truncations:
            return []
        for t in truncations:
            self._check_bt(t, fmt)
        a, b = self._operands(a, b, fmt)
        out = np.empty((len(truncations), a.size), dtype=np.int64)
        _bt_batch_kernel_par(self._bits(a, fmt), self._bits(b, fmt), out,
                             fmt.mantissa_bits, fmt.exponent_bits, fmt.bias,
                             self._nan_bits(fmt),
                             np.asarray(truncations, dtype=np.int64),
                             np.asarray([1 if r else 0 for r in roundings],
                                        dtype=np.int64))
        return self._split(out, fmt, a.shape)
