"""Quadratic-approximation SFUs: the "more structural parameters" extension.

Chapter 6 lists *"enabling more structural parameters of IHW components to
expand the design space"* as future work, and Chapter 3 contrasts the
chosen one-shot linear approximations against the *"commonly used quadratic
approximations using Lagrange or least square approximations with high
accuracy but also very high power consumption"*.

This module adds that second design point: relative-error-weighted
quadratic polynomials on the same reduced ranges, several-fold more
accurate than the Table-1 linear functions (worst case 1.9% for rcp, 0.6%
for rsqrt vs 5.9% / 11.1% linear) at roughly the cost of one extra
constant multiplier and adder (see
:func:`repro.hardware.units.quadratic_sfu`).  Together with the linear
units they give each SFU a two-point accuracy knob analogous to the
multiplier's log/full paths.
"""

from __future__ import annotations

import numpy as np

from .floatops import decompose, flush_subnormals, format_for_dtype

__all__ = [
    "quadratic_reciprocal",
    "quadratic_rsqrt",
    "quadratic_sqrt",
    "quadratic_log2",
    "QUADRATIC_RCP_COEFFS",
    "QUADRATIC_RSQRT_COEFFS",
    "QUADRATIC_LOG2_COEFFS",
    "QUADRATIC_RCP_MAX_ERROR",
    "QUADRATIC_RSQRT_MAX_ERROR",
    "QUADRATIC_LOG2_MAX_ABS_ERROR",
]

# Relative-error-weighted least-squares quadratic fits on the reduced
# ranges (computed offline with numpy.polyfit over a dense grid, constants
# frozen here as the hardware would carry them in CSD form).
#: 1/x ~= c0 + c1 x + c2 x^2 on [0.5, 1].
QUADRATIC_RCP_COEFFS = (4.14574, -5.59465, 2.46232)
#: 1/sqrt(x) ~= c0 + c1 x + c2 x^2 on [0.5, 1].
QUADRATIC_RSQRT_COEFFS = (2.21123, -2.01373, 0.80678)
#: log2(m) ~= c0 + c1 m + c2 m^2 on m in [1, 2).
QUADRATIC_LOG2_COEFFS = (-1.64899, 1.99490, -0.33688)

QUADRATIC_RCP_MAX_ERROR = 0.0185
QUADRATIC_RSQRT_MAX_ERROR = 0.0060
QUADRATIC_LOG2_MAX_ABS_ERROR = 0.0095

_SQRT1_2 = 1.0 / np.sqrt(2.0)


def _mantissa_and_exponent(x, fmt):
    _, exp, frac = decompose(x, fmt)
    mant = 1.0 + frac.astype(np.float64) / float(fmt.implicit_one)
    e = exp.astype(np.int64) - np.int64(fmt.bias)
    return mant, e


def _poly2(coeffs, x):
    c0, c1, c2 = coeffs
    return c0 + x * (c1 + x * c2)


def quadratic_reciprocal(x, dtype=np.float32) -> np.ndarray:
    """``1 / x`` via the quadratic SFU (1.9% worst case vs 5.9% linear)."""
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)
    mant, e = _mantissa_and_exponent(np.abs(x), fmt)
    xr = 0.5 * mant
    approx = _poly2(QUADRATIC_RCP_COEFFS, xr) * np.exp2(-(e + 1).astype(np.float64))
    result = np.where(np.signbit(x), -approx, approx)
    with np.errstate(divide="ignore"):
        result = np.where(x == 0, np.where(np.signbit(x), -np.inf, np.inf), result)
    result = np.where(np.isinf(x), np.where(np.signbit(x), -0.0, 0.0), result)
    result = np.where(np.isnan(x), np.nan, result)
    return flush_subnormals(result.astype(fmt.dtype), fmt)


def quadratic_rsqrt(x, dtype=np.float32) -> np.ndarray:
    """``1 / sqrt(x)`` via the quadratic SFU."""
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)
    mant, e = _mantissa_and_exponent(np.abs(x), fmt)
    xr = 0.5 * mant
    lin = _poly2(QUADRATIC_RSQRT_COEFFS, xr)
    e1 = e + 1
    q = np.floor_divide(e1, 2)
    r = e1 - 2 * q
    approx = lin * np.exp2(-q.astype(np.float64)) * np.where(r == 1, _SQRT1_2, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        approx = np.where(x == 0, np.inf, approx)
        approx = np.where(np.isposinf(x), 0.0, approx)
        approx = np.where((x < 0) | np.isnan(x), np.nan, approx)
    return flush_subnormals(approx.astype(fmt.dtype), fmt)


def quadratic_sqrt(x, dtype=np.float32) -> np.ndarray:
    """``sqrt(x)`` as ``x * quadratic_rsqrt(x)`` (the GPU lowering)."""
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)
    inv = quadratic_rsqrt(x, dtype=dtype)
    with np.errstate(invalid="ignore"):
        result = x.astype(np.float64) * inv.astype(np.float64)
        result = np.where(x == 0, 0.0, result)
        result = np.where(np.isposinf(x), np.inf, result)
    return flush_subnormals(result.astype(fmt.dtype), fmt)


def quadratic_log2(x, dtype=np.float32) -> np.ndarray:
    """``log2(x)`` via the quadratic mantissa polynomial."""
    fmt = format_for_dtype(dtype)
    x = flush_subnormals(np.asarray(x, dtype=fmt.dtype), fmt)
    mant, e = _mantissa_and_exponent(np.abs(x), fmt)
    approx = e.astype(np.float64) + _poly2(QUADRATIC_LOG2_COEFFS, mant)
    with np.errstate(divide="ignore", invalid="ignore"):
        approx = np.where(x == 0, -np.inf, approx)
        approx = np.where(np.isposinf(x), np.inf, approx)
        approx = np.where((x < 0) | np.isnan(x), np.nan, approx)
    return flush_subnormals(approx.astype(fmt.dtype), fmt)
