"""Inline suppression comments recognized by the analyzer.

Two forms, both valid as a trailing comment on the offending line or as a
comment-only line immediately above it:

``# precise: host-side``
    The kernel contract's documented escape hatch: this arithmetic is
    host-side setup/reduction that the paper's CUDA kernel also performs
    outside the imprecise units.  Suppresses only the ``op-coverage``
    checker.  Free text may follow (a justification is encouraged)::

        decoded = unblock(recon) + 128.0  # precise: host-side (codec un-bias)

``# repro-lint: disable=<code>[,<code>...]``
    General suppression of the named checker codes (a checker id such as
    ``hygiene`` matches all of its sub-codes; ``all`` matches everything).
    An optional justification follows ``--``::

        _CACHE: dict = {}  # repro-lint: disable=fork-safety -- pure memo

Suppressions apply to every line an offending AST node spans, so a
trailing comment after the closing parenthesis of a multi-line expression
also works.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["SuppressionIndex", "HOST_SIDE_CODE"]

#: The checker code the ``# precise: host-side`` marker suppresses.
HOST_SIDE_CODE = "op-coverage"

_HOST_SIDE_RE = re.compile(r"#\s*precise:\s*host-side\b")
_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, ]+)")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass
class SuppressionIndex:
    """Per-line suppressed checker codes for one source file."""

    by_line: dict = field(default_factory=dict)  # line -> set of codes

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        by_line: dict = {}
        pending: set = set()  # codes from a comment-only line, for the next line
        for lineno, text in enumerate(source.splitlines(), start=1):
            codes = set(pending)
            pending = set()
            if _HOST_SIDE_RE.search(text):
                codes.add(HOST_SIDE_CODE)
            match = _DISABLE_RE.search(text)
            if match:
                spec = match.group(1).split("--")[0]
                codes.update(
                    c.strip() for c in spec.split(",") if c.strip()
                )
            if codes:
                if _COMMENT_ONLY_RE.match(text):
                    # A standalone comment suppresses the following line.
                    pending = codes
                else:
                    by_line.setdefault(lineno, set()).update(codes)
        if pending:
            # Comment on the last line: nothing follows; keep it harmless.
            pass
        return cls(by_line=by_line)

    def codes_for(self, lines) -> set:
        """Union of suppressed codes over an iterable of line numbers."""
        out: set = set()
        for line in lines:
            out |= self.by_line.get(line, set())
        return out

    def suppresses(self, lines, code: str, checker: str) -> bool:
        """Whether any line in ``lines`` suppresses ``code``.

        Matches the exact code, the owning checker id (suppressing the
        whole checker), or the wildcard ``all``.
        """
        codes = self.codes_for(lines)
        return bool(codes & {code, checker, "all"})
