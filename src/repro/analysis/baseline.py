"""Committed baseline of accepted findings.

New checkers (or newly strict ones) can surface findings the team decides
to accept rather than fix immediately.  ``repro lint --write-baseline``
records the current findings' fingerprints in a JSON document; subsequent
runs report those findings as *baselined* and gate only on findings whose
fingerprint is not in the file.  Because fingerprints hash the normalized
source line rather than the line number, a baseline survives unrelated
edits but expires the moment the offending line itself changes — exactly
the point where the acceptance should be reconsidered.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


def load_baseline(path) -> frozenset:
    """Fingerprints accepted by the baseline file (empty if absent).

    Raises ``ValueError`` for a present-but-unreadable baseline: a corrupt
    gate file should fail loudly, not silently accept everything.
    """
    path = Path(path)
    if not path.exists():
        return frozenset()
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version "
            f"{doc.get('version') if isinstance(doc, dict) else doc!r}"
        )
    entries = doc.get("findings", [])
    return frozenset(
        entry["fingerprint"] for entry in entries if "fingerprint" in entry
    )


def write_baseline(path, findings) -> Path:
    """Persist ``findings`` as the accepted baseline; returns the path.

    Alongside each fingerprint the document stores the human-readable
    context (path, code, message) so reviewers can audit what was
    accepted without re-running the analyzer.
    """
    path = Path(path)
    doc = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "code": f.code,
                "path": f.path,
                "message": f.message,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.code))
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
