"""Discovery and orchestration of the contract checkers.

The engine walks a package tree, parses every module once, hands each
module to every registered checker, filters the raw findings through the
inline-suppression index, fingerprints the survivors, and folds the
result into an :class:`~repro.analysis.findings.AnalysisReport`.

The scan root is a *package directory* (``src/repro`` by default); the
first path component below it is the module's **layer** (``apps``,
``core``, ...), which is what the layer-contract checkers key on.  The
same engine runs over the fixture packages in ``tests/test_analysis.py``
— nothing in here hard-codes the real tree beyond the defaults in
:class:`AnalysisConfig`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path

from .findings import AnalysisReport, Finding, make_fingerprint
from .suppressions import SuppressionIndex

__all__ = [
    "AnalysisConfig",
    "ModuleInfo",
    "DEFAULT_LAYER_RULES",
    "discover_modules",
    "run_analysis",
]

#: Which layers each layer may import at module level, transcribed from the
#: dataflow in ``docs/ARCHITECTURE.md``.  Function-level (lazy) imports are
#: exempt — they are the sanctioned way to break the framework <-> runtime
#: cycle.  Layers absent from this map (``cli``, ``reporting``, top-level
#: modules) are unrestricted.
DEFAULT_LAYER_RULES = {
    "core": frozenset(),
    "telemetry": frozenset(),
    "analysis": frozenset(),
    "hardware": frozenset({"core"}),
    "gpu": frozenset({"core", "hardware"}),
    "erroranalysis": frozenset({"core", "telemetry"}),
    "hdl": frozenset({"core", "erroranalysis"}),
    "quality": frozenset({"core", "hardware", "telemetry"}),
    "apps": frozenset({"core", "gpu", "telemetry"}),
    "framework": frozenset({"core", "gpu", "hardware", "telemetry"}),
    "faults": frozenset({"telemetry"}),
    "runtime": frozenset({"core", "gpu", "telemetry", "faults"}),
    "service": frozenset({"core", "runtime", "framework", "telemetry",
                          "faults", "gpu"}),
}


@dataclass(frozen=True)
class AnalysisConfig:
    """What the checkers treat as contract surface.

    Attributes
    ----------
    package:
        Importable name of the scanned package (absolute-import prefix the
        layer checker resolves, e.g. ``repro`` for ``import repro.apps``).
    layer_rules:
        ``{layer: allowed imported layers}``; see :data:`DEFAULT_LAYER_RULES`.
    kernel_layers:
        Layers whose modules hold application kernels — the op-coverage
        checker only walks these.
    worker_layers:
        Layers imported by worker processes, where module-level mutable
        state risks fork inheritance (fork-safety checker scope).
    context_names:
        Variable names treated a-priori as an :class:`ArithmeticContext`;
        names assigned from ``make_context(...)`` / ``ArithmeticContext(...)``
        are added per function.
    backend_base_names:
        Class names rooting the backend registry family; methods called on
        unresolvable receivers dispatch to every implementation in the
        family (mirrors ``get_backend(...)``), and the batch-contract
        checker audits exactly these classes.
    batch_axis_plurals:
        ``{scalar param: batch param}`` for the config axis a ``*_batch``
        entry point vectorizes over.
    blocking_calls / blocking_modules / blocking_attrs /
    blocking_method_names / blocking_qualnames:
        The async-safety classifier: external calls, module prefixes
        (``subprocess``), unresolved-receiver attribute and method names,
        and package qualnames that block the calling thread.
    worker_entrypoint_names:
        Function names the process-pool runner submits to workers;
        roots of the worker-state reachability query.
    worker_state_layers:
        Layers whose module-level mutable containers the worker-state
        checker audits for worker-reachable writes without a reset hook.
    """

    package: str = "repro"
    layer_rules: dict = field(default_factory=lambda: dict(DEFAULT_LAYER_RULES))
    kernel_layers: tuple = ("apps",)
    worker_layers: tuple = (
        "core", "hardware", "gpu", "apps", "quality", "erroranalysis",
        "framework", "runtime", "faults",
    )
    context_names: tuple = ("ctx", "context")
    backend_base_names: tuple = ("ComputeBackend",)
    batch_axis_plurals: dict = field(default_factory=lambda: {
        "threshold": "thresholds",
        "config": "configs",
        "truncation": "truncations",
    })
    blocking_calls: tuple = (
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "os.system",
        "os.waitpid",
        "select.select",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
    )
    blocking_modules: tuple = ("subprocess",)
    blocking_attrs: tuple = (
        "read_text", "write_text", "read_bytes", "write_bytes",
    )
    blocking_method_names: tuple = ("sweep",)
    blocking_qualnames: tuple = ("ExperimentRunner.sweep",)
    #: Statement-level bare calls to these externals create a coroutine
    #: that is dropped unawaited.
    async_externals: tuple = (
        "asyncio.sleep", "asyncio.gather", "asyncio.wait",
        "asyncio.wait_for", "asyncio.open_connection",
        "asyncio.start_server", "asyncio.to_thread",
    )
    worker_entrypoint_names: tuple = (
        "_evaluate_chunk", "_evaluate_batch_chunk", "_call_chunk",
    )
    worker_state_layers: tuple = ("core", "runtime")
    #: Populated by the engine: every layer directory found under the root.
    known_layers: frozenset = frozenset()
    #: Populated by the engine: the resolved whole-program view
    #: (:class:`repro.analysis.callgraph.Program` with ``summaries``).
    program: object = None


@dataclass
class ModuleInfo:
    """One parsed module, as the checkers see it."""

    path: Path  # absolute
    relpath: str  # package-relative posix path, e.g. "apps/dct.py"
    layer: str  # "" for modules directly under the root
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex

    @property
    def package_parts(self) -> tuple:
        """Package path of the module's directory, e.g. ("apps",)."""
        return tuple(Path(self.relpath).parts[:-1])

    def source_line(self, lineno: int) -> str:
        lines = self.source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


def discover_modules(root) -> list:
    """Parse every ``*.py`` under ``root`` into :class:`ModuleInfo`s."""
    root = Path(root)
    modules = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ValueError(f"cannot parse {path}: {exc}") from exc
        modules.append(
            ModuleInfo(
                path=path,
                relpath=rel.as_posix(),
                layer=rel.parts[0] if len(rel.parts) > 1 else "",
                source=source,
                tree=tree,
                suppressions=SuppressionIndex.from_source(source),
            )
        )
    return modules


def run_analysis(root, config=None, checkers=None,
                 baseline_fingerprints=frozenset(),
                 restrict_paths=None) -> AnalysisReport:
    """Run every checker over the package at ``root``.

    Parameters
    ----------
    root:
        Package directory to scan (e.g. ``src/repro``).
    config:
        :class:`AnalysisConfig`; defaults to the repro contract surface.
    checkers:
        ``{checker_id: check_fn}`` override; defaults to
        :data:`repro.analysis.checkers.ALL_CHECKERS`.
    baseline_fingerprints:
        Accepted fingerprints (see :mod:`repro.analysis.baseline`).
    restrict_paths:
        Optional set of package-relative posix paths; findings are only
        *emitted* for these modules.  The whole package is still parsed
        and summarized — the interprocedural checkers need the complete
        call graph even when reporting on a changed-file subset.
    """
    from .callgraph import build_program
    from .checkers import ALL_CHECKERS
    from .dataflow import compute_summaries

    root = Path(root)
    if not root.is_dir():
        raise ValueError(f"analysis root {root} is not a directory")
    config = config or AnalysisConfig()
    checkers = checkers if checkers is not None else ALL_CHECKERS
    modules = discover_modules(root)
    config = replace(
        config,
        known_layers=frozenset(m.layer for m in modules if m.layer)
        | frozenset(config.layer_rules),
    )
    program = build_program(modules, config)
    program.summaries = compute_summaries(program, config)
    config = replace(config, program=program)

    findings = []
    suppressed = 0
    occurrences: dict = {}  # (code, relpath, normalized line) -> count
    for module in modules:
        if restrict_paths is not None and module.relpath not in restrict_paths:
            continue
        raw = []
        for checker_id, check in checkers.items():
            for item in check(module, config):
                raw.append((checker_id, item))
        raw.sort(key=lambda pair: (pair[1].line, pair[1].col, pair[1].code))
        for checker_id, item in raw:
            if module.suppressions.suppresses(item.span(), item.code, checker_id):
                suppressed += 1
                continue
            normalized = " ".join(module.source_line(item.line).split())
            key = (item.code, module.relpath, normalized)
            occurrences[key] = occurrences.get(key, 0) + 1
            findings.append(
                Finding(
                    checker=checker_id,
                    code=item.code,
                    severity=item.severity,
                    path=module.relpath,
                    line=item.line,
                    col=item.col,
                    message=item.message,
                    fingerprint=make_fingerprint(
                        item.code, module.relpath, normalized,
                        occurrences[key] - 1,
                    ),
                )
            )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return AnalysisReport(
        root=str(root),
        findings=findings,
        suppressed=suppressed,
        baseline_fingerprints=frozenset(baseline_fingerprints),
        modules_scanned=len(modules),
    )
