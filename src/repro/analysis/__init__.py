"""Contract-enforcing static analysis for the reproduction codebase.

The invariants ``docs/ARCHITECTURE.md`` states in prose — kernel
arithmetic routes through :class:`ArithmeticContext`, cache keys cover
every result-affecting field, layers import downward only, specs survive
the process-pool boundary — are checked mechanically here.  See
``docs/ANALYSIS.md`` for each checker's rationale and the
suppression/baseline workflow, and ``repro lint`` for the CLI.

Typical programmatic use::

    from repro.analysis import run_analysis, load_baseline

    report = run_analysis(Path("src/repro"),
                          baseline_fingerprints=load_baseline(path))
    if not report.ok:
        print(report.format_text())
"""

from __future__ import annotations

from .baseline import (
    BASELINE_VERSION,
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from .callgraph import Program, build_program
from .dataflow import Summary, compute_summaries
from .engine import (
    DEFAULT_LAYER_RULES,
    AnalysisConfig,
    ModuleInfo,
    discover_modules,
    run_analysis,
)
from .findings import AnalysisReport, Finding, RawFinding, make_fingerprint
from .sarif import to_sarif
from .suppressions import HOST_SIDE_CODE, SuppressionIndex

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_LAYER_RULES",
    "Finding",
    "HOST_SIDE_CODE",
    "ModuleInfo",
    "Program",
    "RawFinding",
    "Summary",
    "SuppressionIndex",
    "build_program",
    "compute_summaries",
    "discover_modules",
    "load_baseline",
    "make_fingerprint",
    "run_analysis",
    "to_sarif",
    "write_baseline",
]
