"""SARIF 2.1.0 emission for CI code-scanning annotation.

``repro lint --format sarif`` renders the report in the Static Analysis
Results Interchange Format that GitHub code scanning ingests
(``github/codeql-action/upload-sarif``), so new findings show up as
inline PR annotations instead of a log line in a failed job.

Only *new* (un-baselined) findings are emitted — baselined ones are
accepted debt, and annotating them on every PR would train reviewers to
ignore the annotations.  Each result carries the analyzer's stable
fingerprint as a ``partialFingerprints`` entry, so code scanning tracks
a finding across line shifts exactly like the committed baseline does.
"""

from __future__ import annotations

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF reporting levels by finding severity.
_LEVELS = {"error": "error", "warning": "warning"}


def to_sarif(report, path_prefix: str = "") -> dict:
    """Render ``report`` (an :class:`AnalysisReport`) as a SARIF log.

    ``path_prefix`` is prepended to the package-relative finding paths so
    artifact URIs resolve from the repository root (e.g. ``src/repro/``),
    which is what the code-scanning annotation step needs.
    """
    findings = report.new_findings
    rules: dict = {}
    results = []
    for finding in findings:
        if finding.code not in rules:
            rules[finding.code] = {
                "id": finding.code,
                "shortDescription": {"text": f"repro-lint {finding.code}"},
                "properties": {"checker": finding.checker},
            }
        results.append({
            "ruleId": finding.code,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f"{path_prefix}{finding.path}",
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col + 1, 1),
                    },
                },
            }],
            "partialFingerprints": {"reproLint/v1": finding.fingerprint},
        })
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": sorted(rules.values(), key=lambda r: r["id"]),
                },
            },
            "results": results,
            "properties": {
                "modulesScanned": report.modules_scanned,
                "suppressed": report.suppressed,
                "baselined": len(report.baselined_findings),
            },
        }],
    }
