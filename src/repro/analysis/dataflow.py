"""Per-function dataflow summaries over the call graph, to a fixpoint.

Four facts per function, each feeding one interprocedural checker:

``may_block``
    A witness chain ("ResultCache.document -> DirectoryBackend.read_json
    -> path.read_text") proving the function can block the calling
    thread.  Seeded from direct blocking calls (``time.sleep``, sync
    file/socket IO, ``subprocess``, the ``.sweep`` runner surface) and
    propagated caller-ward through *sync* resolved targets only — a
    blocking coroutine is flagged at its own definition by the
    async-safety checker, not at every await site.

``returns_imprecise`` / ``tainted_params``
    The PR 3 intra-procedural kernel taint, closed over call boundaries:
    a helper whose ``return`` carries a context-derived value marks its
    callers' results tainted, and a tainted argument at a call site
    taints the callee's parameter.  Computed only over
    ``AnalysisConfig.kernel_layers``.

``mutates_params`` / ``writes_globals``
    In-place mutation facts for the worker-state checker: subscript /
    attribute stores, mutator-method calls, and ``global`` assignment,
    with param mutation propagated through argument aliasing — passing a
    module global into a param the callee mutates writes that global.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import dotted_name, walk_scope
from .checkers.opcoverage import _KernelTaint

__all__ = ["Summary", "compute_summaries", "direct_block"]

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popitem", "clear",
    "extend", "extendleft", "insert", "remove", "discard", "setdefault",
})


@dataclass
class Summary:
    """What the rest of the program may assume about one function."""

    may_block: str = ""  # witness chain, "" when provably unknown-to-block
    returns_imprecise: bool = False
    tainted_params: set = field(default_factory=set)
    mutates_params: set = field(default_factory=set)
    writes_globals: set = field(default_factory=set)  # {(relpath, name)}


def direct_block(edge, config) -> str:
    """Witness if this single call site blocks the thread, else ''."""
    if edge.external:
        if edge.external in config.blocking_calls:
            return edge.external
        top = edge.external.split(".")[0]
        if top in config.blocking_modules:
            return edge.external
    if edge.chain == "open":
        return "open"
    if not edge.targets and "." in edge.chain:
        last = edge.chain.rsplit(".", 1)[1]
        if last in config.blocking_attrs or last in config.blocking_method_names:
            return edge.chain
    return ""


def _base_name(node) -> str:
    """Leftmost name of a subscript/attribute store target, '' otherwise."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


def _local_facts(program, fn, summary, config) -> None:
    """Seed ``summary`` with facts visible inside ``fn`` alone."""
    params = set(fn.params)
    module_globals = program.module_globals.get(fn.module.relpath, set())
    declared_global: set = set()

    def record_store(name: str) -> None:
        if name in params:
            summary.mutates_params.add(name)
        elif name in module_globals and name not in params:
            summary.writes_globals.add((fn.module.relpath, name))

    for node in walk_scope(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    record_store(_base_name(target))
                elif isinstance(target, ast.Name) and \
                        target.id in declared_global:
                    summary.writes_globals.add(
                        (fn.module.relpath, target.id))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    record_store(_base_name(target))

    for edge in program.calls.get(fn.fid, ()):
        if not summary.may_block:
            witness = direct_block(edge, config)
            if witness:
                summary.may_block = witness
        parts = edge.chain.split(".")
        if len(parts) == 2 and parts[1] in _MUTATOR_METHODS:
            record_store(parts[0])


def _positional_offset(target) -> int:
    """Skip the receiver slot when mapping call args onto method params."""
    if target.cls is not None and target.params and \
            target.params[0] in ("self", "cls"):
        return 1
    return 0


def _propagate(program, summaries, config) -> None:
    """may_block / mutation fixpoint over resolved call edges."""
    changed = True
    while changed:
        changed = False
        for fid, edges in program.calls.items():
            caller = program.functions[fid]
            summary = summaries[fid]
            caller_params = set(caller.params)
            module_globals = program.module_globals.get(
                caller.module.relpath, set())
            for edge in edges:
                for tid in edge.targets:
                    target = program.functions[tid]
                    tsum = summaries[tid]
                    if (not summary.may_block and not target.is_async
                            and tsum.may_block):
                        summary.may_block = \
                            f"{target.display} -> {tsum.may_block}"
                        changed = True
                    if not tsum.mutates_params:
                        continue
                    offset = _positional_offset(target)
                    for i, arg in enumerate(edge.node.args):
                        if not isinstance(arg, ast.Name):
                            continue
                        slot = i + offset
                        if slot >= len(target.params) or \
                                target.params[slot] not in tsum.mutates_params:
                            continue
                        before = (len(summary.mutates_params),
                                  len(summary.writes_globals))
                        if arg.id in caller_params:
                            summary.mutates_params.add(arg.id)
                        elif arg.id in module_globals:
                            summary.writes_globals.add(
                                (caller.module.relpath, arg.id))
                        if before != (len(summary.mutates_params),
                                      len(summary.writes_globals)):
                            changed = True
                    for kw in edge.node.keywords:
                        if kw.arg is None or \
                                not isinstance(kw.value, ast.Name) or \
                                kw.arg not in tsum.mutates_params:
                            continue
                        name = kw.value.id
                        before = (len(summary.mutates_params),
                                  len(summary.writes_globals))
                        if name in caller_params:
                            summary.mutates_params.add(name)
                        elif name in module_globals:
                            summary.writes_globals.add(
                                (caller.module.relpath, name))
                        if before != (len(summary.mutates_params),
                                      len(summary.writes_globals)):
                            changed = True


def run_kernel_taint(program, fn, summaries, config):
    """One :class:`_KernelTaint` pass with whole-program call resolution."""
    edges_by_node = {
        id(edge.node): edge for edge in program.calls.get(fn.fid, ())
    }

    def call_taints(node) -> bool:
        edge = edges_by_node.get(id(node))
        if edge is None:
            return False
        return any(
            summaries[tid].returns_imprecise for tid in edge.targets
        )

    initial = summaries[fn.fid].tainted_params & set(fn.params)
    taint = _KernelTaint(
        fn.node, config.context_names,
        initial_tainted=initial, call_taints=call_taints,
    )
    taint.run()
    return taint, edges_by_node


def _taint_fixpoint(program, summaries, config) -> None:
    """Close kernel taint over call boundaries (kernel layers only)."""
    kernel_fns = [
        fn for fn in program.functions.values()
        if fn.module.layer in config.kernel_layers
    ]
    changed = True
    while changed:
        changed = False
        for fn in kernel_fns:
            summary = summaries[fn.fid]
            taint, _ = run_kernel_taint(program, fn, summaries, config)
            if taint.returns_tainted and not summary.returns_imprecise:
                summary.returns_imprecise = True
                changed = True
            # Tainted arguments taint the callee's parameters.
            for edge in program.calls.get(fn.fid, ()):
                for tid in edge.targets:
                    target = program.functions[tid]
                    if target.module.layer not in config.kernel_layers:
                        continue
                    tsum = summaries[tid]
                    offset = _positional_offset(target)
                    for i, arg in enumerate(edge.node.args):
                        slot = i + offset
                        if slot >= len(target.params):
                            break
                        name = target.params[slot]
                        if taint.is_tainted(arg) and \
                                name not in tsum.tainted_params:
                            tsum.tainted_params.add(name)
                            changed = True
                    for kw in edge.node.keywords:
                        if kw.arg in target.params and \
                                taint.is_tainted(kw.value) and \
                                kw.arg not in tsum.tainted_params:
                            tsum.tainted_params.add(kw.arg)
                            changed = True


def compute_summaries(program, config) -> dict:
    """``{fid: Summary}`` for every function, to a fixpoint."""
    summaries = {fid: Summary() for fid in program.functions}
    for fid, fn in program.functions.items():
        _local_facts(program, fn, summaries[fid], config)
    for fid, fn in program.functions.items():
        if not summaries[fid].may_block and fn.qualname in \
                config.blocking_qualnames:
            summaries[fid].may_block = fn.qualname
    _propagate(program, summaries, config)
    _taint_fixpoint(program, summaries, config)
    return summaries
