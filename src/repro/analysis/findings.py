"""Finding model shared by every checker.

A checker reports :class:`RawFinding` objects — location, code, message —
and the engine (:mod:`repro.analysis.engine`) turns the survivors of
suppression filtering into :class:`Finding` records carrying a *stable
fingerprint*: a content hash of the checker code, the module path, and the
normalized source line, independent of the absolute line number.  The
fingerprint is what the committed baseline stores, so findings stay
recognized when unrelated edits shift code up or down a file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["RawFinding", "Finding", "AnalysisReport", "SEVERITIES"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class RawFinding:
    """What a checker emits: a location plus the complaint, pre-fingerprint."""

    code: str  # e.g. "op-coverage", "hygiene-float-eq"
    severity: str  # "error" | "warning"
    line: int  # 1-based first line of the offending node
    col: int
    message: str
    end_line: int = 0  # last line of the node (0 -> same as line)

    def span(self) -> range:
        return range(self.line, max(self.end_line, self.line) + 1)


@dataclass(frozen=True)
class Finding:
    """One accepted finding, addressable by its stable fingerprint."""

    checker: str  # owning checker id, e.g. "hygiene"
    code: str  # specific code, e.g. "hygiene-float-eq"
    severity: str
    path: str  # package-relative posix path, e.g. "apps/dct.py"
    line: int
    col: int
    message: str
    fingerprint: str

    def format(self, prefix: str = "") -> str:
        location = f"{prefix}{self.path}:{self.line}:{self.col}"
        return (
            f"{location}: {self.severity} {self.code}: {self.message} "
            f"[{self.fingerprint}]"
        )

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def make_fingerprint(code: str, path: str, normalized_line: str,
                     occurrence: int) -> str:
    """Content hash of a finding, independent of its line number.

    ``occurrence`` disambiguates several identical findings on identical
    source lines within one file (counted in file order).
    """
    payload = json.dumps(
        [code, path, normalized_line, occurrence], separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class AnalysisReport:
    """Outcome of one :func:`repro.analysis.run_analysis` invocation."""

    root: str  # scan root, for display prefixes
    findings: list = field(default_factory=list)  # unsuppressed, file order
    suppressed: int = 0  # inline-suppressed count
    baseline_fingerprints: frozenset = frozenset()
    modules_scanned: int = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def new_findings(self) -> list:
        return [
            f for f in self.findings
            if f.fingerprint not in self.baseline_fingerprints
        ]

    @property
    def baselined_findings(self) -> list:
        return [
            f for f in self.findings
            if f.fingerprint in self.baseline_fingerprints
        ]

    @property
    def stale_fingerprints(self) -> list:
        """Baseline entries whose finding no longer exists (fix & prune)."""
        present = {f.fingerprint for f in self.findings}
        return sorted(self.baseline_fingerprints - present)

    @property
    def ok(self) -> bool:
        """Gate verdict: clean unless *new* (un-baselined) findings exist."""
        return not self.new_findings

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        parts = [
            f"{len(self.findings)} finding{'s' if len(self.findings) != 1 else ''}",
            f"{len(self.new_findings)} new",
        ]
        if self.baseline_fingerprints:
            parts.append(f"{len(self.baselined_findings)} baselined")
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed inline")
        if self.stale_fingerprints:
            parts.append(f"{len(self.stale_fingerprints)} stale baseline entries")
        return (
            f"{', '.join(parts)} across {self.modules_scanned} modules"
        )

    def format_text(self, path_prefix: str = "") -> str:
        lines = [f.format(prefix=path_prefix) for f in self.new_findings]
        baselined = self.baselined_findings
        if baselined:
            lines.append(f"-- {len(baselined)} baselined finding"
                         f"{'s' if len(baselined) != 1 else ''} (accepted) --")
            lines.extend(f.format(prefix=path_prefix) for f in baselined)
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": self.root,
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.fingerprint for f in self.new_findings],
            "stale_baseline": self.stale_fingerprints,
            "summary": {
                "total": len(self.findings),
                "new": len(self.new_findings),
                "baselined": len(self.baselined_findings),
                "suppressed": self.suppressed,
                "modules_scanned": self.modules_scanned,
                "ok": self.ok,
            },
        }
