"""Layer-import discipline, mechanized from the ARCHITECTURE.md dataflow.

The package is layered (core → hardware → gpu → apps → framework →
runtime → cli); a lower layer importing a higher one at module level
creates an import cycle the lazy-import convention exists to prevent, and
couples the numeric core to orchestration concerns.  The allowed edges
live in :data:`repro.analysis.engine.DEFAULT_LAYER_RULES`; layers absent
from the map (``cli``, ``reporting``, top-level modules) may import
anything.

Only *module-level* imports are policed.  Function-level imports are the
sanctioned lazy-import idiom (e.g. ``runtime`` importing ``framework``
inside the worker entry point) and are deliberately ignored.
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

CODE = "layer-imports"


def _imported_layers(module, package):
    """Yield (layer, node) for each module-level import of a package layer."""
    prefix = package + "."
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == package or alias.name.startswith(prefix):
                    parts = alias.name.split(".")
                    if len(parts) >= 2:
                        yield parts[1], stmt
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:  # relative import
                # level 1 = sibling package; level 2 from "apps/x.py" reaches
                # the package root, so "from ..core import y" targets "core".
                depth = len(module.package_parts) - stmt.level + 1
                if depth < 0:
                    continue
                parts = (stmt.module or "").split(".") if stmt.module else []
                base = list(module.package_parts[:depth]) + parts
                if base:
                    yield base[0], stmt
                else:
                    # "from .. import core" — layer is in the alias names.
                    for alias in stmt.names:
                        yield alias.name, stmt
            elif stmt.module and (
                stmt.module == package or stmt.module.startswith(prefix)
            ):
                parts = stmt.module.split(".")
                if len(parts) >= 2:
                    yield parts[1], stmt
                else:
                    for alias in stmt.names:
                        yield alias.name, stmt


def check(module, config) -> list:
    rules = config.layer_rules
    if module.layer not in rules:
        return []  # unrestricted layer (cli, reporting, top-level modules)
    allowed = rules[module.layer]
    findings = []
    for layer, stmt in _imported_layers(module, config.package):
        if layer not in config.known_layers:
            continue  # "from .config import X" inside the same layer, etc.
        if layer == module.layer or layer in allowed:
            continue
        findings.append(
            RawFinding(
                code=CODE,
                severity="error",
                line=stmt.lineno,
                col=stmt.col_offset,
                message=(
                    f"layer `{module.layer}` must not import "
                    f"`{config.package}.{layer}` at module level "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'}; "
                    "use a function-level import if the dependency is lazy)"
                ),
                end_line=getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno,
            )
        )
    return findings
