"""Numeric hygiene: small patterns that corrupt numeric code quietly.

Four rules, all scoped to the whole package (bad numerics hide anywhere):

``hygiene-float-eq``
    ``==`` / ``!=`` against a float literal.  In a repo whose entire
    subject is controlled floating-point imprecision, exact float
    comparison is either a bug or needs an explicit tolerance.  Integer
    -valued literals (``0.0``, ``1.0``, ``-1.0``, ``2.0``...) used as
    sentinels are still flagged — use ``math.isclose`` or an integer.

``hygiene-bare-except``
    ``except:`` with no exception class swallows ``KeyboardInterrupt``
    and masks numeric errors the error-analysis layer exists to surface.

``hygiene-mutable-default``
    Mutable default argument (``def f(x, acc=[])``) — shared across
    calls, and across forked workers.

``hygiene-pool-swallow``
    A broad handler (bare ``except:``, ``except Exception``, or
    ``except BaseException``) wrapping a ``future.result(...)`` call
    with no ``BrokenProcessPool`` handler on the same ``try``.  A lost
    worker pool surfaces as ``BrokenProcessPool`` *from* ``result()``;
    a broad handler silently converts "the pool is dead, rebuild it and
    requeue" into "this one task failed", so every task dispatched to
    the dead pool is misdiagnosed.  Catch ``BrokenProcessPool``
    explicitly (first) — see the recovery loop in
    ``repro.runtime.runner``.
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

_MUTABLE_DEFAULT_CALLS = {"dict", "list", "set", "defaultdict", "Counter"}


def _float_literal(node) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _float_literal(node.operand)
    return False


def _float_eq(module) -> list:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _float_literal(left) or _float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                findings.append(
                    RawFinding(
                        code="hygiene-float-eq",
                        severity="warning",
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"exact `{symbol}` against a float literal — use "
                            "math.isclose/np.isclose or an integer sentinel"
                        ),
                        end_line=getattr(node, "end_lineno", node.lineno)
                        or node.lineno,
                    )
                )
    return findings


def _bare_except(module) -> list:
    findings = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                RawFinding(
                    code="hygiene-bare-except",
                    severity="warning",
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "bare `except:` swallows KeyboardInterrupt and masks "
                        "numeric failures — name the exception class"
                    ),
                )
            )
    return findings


def _mutable_default(module) -> list:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.Dict, ast.List, ast.Set))
            if isinstance(default, ast.Call):
                func = default.func
                name = getattr(func, "id", getattr(func, "attr", ""))
                mutable = name in _MUTABLE_DEFAULT_CALLS
            if mutable:
                findings.append(
                    RawFinding(
                        code="hygiene-mutable-default",
                        severity="warning",
                        line=default.lineno,
                        col=default.col_offset,
                        message=(
                            "mutable default argument is shared across calls "
                            "(and forked workers) — default to None"
                        ),
                    )
                )
    return findings


_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


def _exception_names(type_node) -> set:
    """Every dotted-name tail referenced by an except clause's type."""
    names = set()
    for node in ast.walk(type_node):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _pool_swallow(module) -> list:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        calls_result = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "result"
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        if not calls_result:
            continue
        handles_broken_pool = any(
            handler.type is not None
            and "BrokenProcessPool" in _exception_names(handler.type)
            for handler in node.handlers
        )
        if handles_broken_pool:
            continue
        for handler in node.handlers:
            broad = handler.type is None or (
                _exception_names(handler.type) & _BROAD_EXCEPTION_NAMES
            )
            if broad:
                findings.append(
                    RawFinding(
                        code="hygiene-pool-swallow",
                        severity="warning",
                        line=handler.lineno,
                        col=handler.col_offset,
                        message=(
                            "broad except around a future.result() call "
                            "swallows BrokenProcessPool — a dead worker pool "
                            "would be misdiagnosed as a task failure; handle "
                            "BrokenProcessPool explicitly (rebuild + requeue)"
                        ),
                    )
                )
    return findings


def check(module, config) -> list:
    return (_float_eq(module) + _bare_except(module) + _mutable_default(module)
            + _pool_swallow(module))
