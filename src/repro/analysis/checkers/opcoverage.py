"""Kernel op-coverage: arithmetic in app kernels must route through the context.

The reproduction's central contract (docs/ARCHITECTURE.md, "The kernel
contract"): every floating-point operation inside a ``repro.apps`` kernel
goes through :class:`ArithmeticContext` dispatch (``ctx.add``, ``ctx.mul``,
``ctx.fma``, ...).  A raw ``a * b`` on arrays derived from the context
bypasses the imprecise datapath entirely — the result silently stays
precise, the op counters undercount, and the power model and drift PMFs
built on those counters are wrong.  That failure mode produces *plausible
numbers*, which is why it needs a mechanical check.

The checker runs a small intra-procedural taint analysis per function:

Seeds (tainted = "device value", i.e. flows through the imprecise units):
  * any call on a context receiver: ``ctx.add(...)``, ``context.array(...)``;
  * names assigned from ``make_context(...)`` / ``ArithmeticContext(...)``
    / ``ContextBatch(...)`` are treated as context receivers themselves,
    so batched entry points (``batch.add(...)``) count as covered ops;
  * names listed in ``AnalysisConfig.context_names`` are context receivers
    a-priori (the repo-wide parameter naming convention).

Propagation (to a monotone fixpoint — taint only grows):
  * assignment / augmented assignment / tuple unpacking from a tainted
    expression;
  * any expression containing a tainted operand taints the whole
    expression (BinOp, UnaryOp, IfExp, tuples/lists, subscripts, slices);
  * a call with a tainted argument, or a method call on a tainted
    receiver, returns taint (conservative: kernels are small and helpers
    preserve device-ness);
  * ``for`` targets iterate tainted iterables.

Untaint / never tainted:
  * function parameters (host-provided sizes, scalars, config — flagging
    ``depth - 1`` would be noise);
  * plain attribute reads (``sphere.radius``);
  * ``float()`` / ``int()`` / ``bool()`` — the documented host-side scalar
    extraction idiom (``mean = float(np.mean(img))``).

Flagged, when any operand is tainted:
  * arithmetic ``BinOp`` (+ - * / ** % @) and arithmetic ``AugAssign``;
  * calls to numpy arithmetic entry points (``np.add``, ``np.add.at``,
    ``np.multiply``, ``np.sqrt``, ``np.exp``, ...).

Suppression: a trailing ``# precise: host-side`` marks documented
host-side setup/reduction arithmetic (the same steps the paper's CUDA
harness performs outside the imprecise units).
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

CODE = "op-coverage"

_ARITH_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
    ast.Pow, ast.MatMult,
)

#: numpy call names (after the ``np.`` / ``numpy.`` prefix) that perform
#: elementwise arithmetic and therefore bypass the context datapath when
#: handed a device value.  Structural helpers (reshape, clip, where,
#: zeros_like, asarray, ...) are deliberately absent.
_NP_ARITH = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "negative", "reciprocal", "power", "float_power", "mod", "remainder",
    "sqrt", "cbrt", "square", "exp", "exp2", "expm1", "log", "log2",
    "log10", "log1p", "sin", "cos", "tan", "arctan2", "hypot", "dot",
    "matmul", "inner", "outer", "tensordot", "einsum", "cumsum", "cumprod",
    "fma",
}

_UNTAINT_CALLS = {"float", "int", "bool", "len", "range", "enumerate", "zip"}

#: Constructor names whose result is a context receiver: calls on it are
#: covered ops.  ``ContextBatch`` is the batched mirror of
#: ``ArithmeticContext`` — its entry points (``batch.add`` -> the
#: backend's ``imprecise_add_batch``) route through the imprecise units,
#: so kernels adopting the batch API get no false suppression pressure.
_CONTEXT_CONSTRUCTORS = ("ArithmeticContext", "ContextBatch")


def _is_context_constructor(name: str) -> bool:
    return name.split(".")[-1] == "make_context" or any(
        name.endswith(ctor) for ctor in _CONTEXT_CONSTRUCTORS
    )


def _dotted(node) -> str:
    """Dotted name of an expression, '' if not a plain name/attribute chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _np_arith_name(func) -> str:
    """Return the numpy ufunc name if ``func`` is a numpy arithmetic call."""
    dotted = _dotted(func)
    if not dotted:
        return ""
    parts = dotted.split(".")
    if parts[0] not in ("np", "numpy"):
        return ""
    # np.sqrt, np.add, and the scatter form np.add.at
    if len(parts) == 2 and parts[1] in _NP_ARITH:
        return parts[1]
    if len(parts) == 3 and parts[1] in _NP_ARITH and parts[2] in ("at", "outer",
                                                                 "reduce",
                                                                 "accumulate"):
        return f"{parts[1]}.{parts[2]}"
    return ""


class _KernelTaint:
    """Taint analysis over one function body.

    The interprocedural pass (:mod:`repro.analysis.dataflow`) reuses this
    class with two extension points: ``initial_tainted`` seeds parameter
    taint learned from call sites, and ``call_taints`` is consulted for
    calls the intra-procedural rules say are clean — it returns True when
    the whole-program summary of a resolved callee says the call returns
    a device value.  ``returns_tainted`` records whether any ``return``
    statement returned taint, which is how device-ness escapes a helper.
    """

    def __init__(self, func, context_names, initial_tainted=(),
                 call_taints=None):
        self.func = func
        self.contexts = set(context_names)
        self.tainted: set = set(initial_tainted)
        self.call_taints = call_taints
        self.returns_tainted = False
        self.findings: list = []
        # End line of the statement being scanned, so a suppression after
        # the closing parenthesis of a multi-line expression still covers
        # the offending sub-node.
        self._stmt_end = 0

    # -- taint queries -------------------------------------------------
    def is_context(self, node) -> bool:
        return isinstance(node, ast.Name) and node.id in self.contexts

    def is_tainted(self, node) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            return self._call_taints(node)
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(elt) for elt in node.elts)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.is_tainted(node.elt) or any(
                self.is_tainted(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.Dict):
            return any(self.is_tainted(v) for v in node.values)
        if isinstance(node, ast.DictComp):
            return self.is_tainted(node.value) or any(
                self.is_tainted(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.Compare):
            return False  # booleans are host-side control flow
        if isinstance(node, ast.Attribute):
            return False  # sphere.radius — plain data access
        return False

    def _call_taints(self, node: ast.Call) -> bool:
        func = node.func
        name = _dotted(func)
        if name in _UNTAINT_CALLS:
            return False  # float(np.mean(x)) — host scalar extraction
        # ctx.anything(...) returns a device value.
        if isinstance(func, ast.Attribute) and self.is_context(func.value):
            return True
        if _is_context_constructor(name):
            return True
        # Method call on a tainted receiver (x.astype(...), x.copy()).
        if isinstance(func, ast.Attribute) and self.is_tainted(func.value):
            return True
        # Any call fed a tainted argument conservatively returns taint.
        if any(self.is_tainted(arg) for arg in node.args) or any(
            self.is_tainted(kw.value) for kw in node.keywords
        ):
            return True
        # Whole-program hook: a resolved callee whose summary says it
        # returns a device value taints the call even with clean args.
        return self.call_taints is not None and self.call_taints(node)

    # -- one pass ------------------------------------------------------
    def _bind(self, target, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted)
        # Subscript/attribute targets mutate an existing object in place;
        # the base name's taint already covers it.

    def _scan(self, body, emit: bool) -> None:
        for stmt in body:
            self._scan_stmt(stmt, emit)

    def _scan_stmt(self, stmt, emit: bool) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.Return, ast.Expr)):
            # Simple statements: a finding's suppressible span is the whole
            # statement, so a trailing comment after a multi-line
            # expression's closing parenthesis still covers it.
            self._stmt_end = getattr(stmt, "end_lineno", stmt.lineno) \
                or stmt.lineno
        else:
            # Compound statements: scope the span to the header expression,
            # not the body (a comment inside the body must not suppress a
            # finding on the condition).
            header = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
            self._stmt_end = (
                getattr(header, "end_lineno", stmt.lineno) or stmt.lineno
                if header is not None else stmt.lineno
            )
        if isinstance(stmt, ast.Assign):
            value_tainted = self.is_tainted(stmt.value)
            if self._seeds_context(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.contexts.add(target.id)
            for target in stmt.targets:
                self._bind(target, value_tainted)
            self._visit_expr(stmt.value, emit)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.is_tainted(stmt.value))
            self._visit_expr(stmt.value, emit)
        elif isinstance(stmt, ast.AugAssign):
            tainted = self.is_tainted(stmt.target) or self.is_tainted(stmt.value)
            if tainted and isinstance(stmt.op, _ARITH_BINOPS):
                self._flag(stmt, emit,
                           f"raw `{_OP_SYMBOL.get(type(stmt.op), 'op')}=` on a "
                           "context-derived value bypasses ArithmeticContext")
            self._bind(stmt.target, tainted)
            self._visit_expr(stmt.value, emit)
        elif isinstance(stmt, ast.For):
            self._bind(stmt.target, self.is_tainted(stmt.iter))
            self._visit_expr(stmt.iter, emit)
            self._scan(stmt.body, emit)
            self._scan(stmt.orelse, emit)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, emit)
            self._scan(stmt.body, emit)
            self._scan(stmt.orelse, emit)
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.test, emit)
            self._scan(stmt.body, emit)
            self._scan(stmt.orelse, emit)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_expr(item.context_expr, emit)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.is_tainted(item.context_expr))
            self._scan(stmt.body, emit)
        elif isinstance(stmt, ast.Try):
            self._scan(stmt.body, emit)
            for handler in stmt.handlers:
                self._scan(handler.body, emit)
            self._scan(stmt.orelse, emit)
            self._scan(stmt.finalbody, emit)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                if isinstance(stmt, ast.Return) and self.is_tainted(stmt.value):
                    self.returns_tainted = True
                self._visit_expr(stmt.value, emit)
        # Nested function/class defs are analyzed as their own kernels by
        # the module walk; skip them here.

    def _seeds_context(self, value) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = _dotted(value.func)
        return _is_context_constructor(name)

    # -- finding emission ----------------------------------------------
    def _visit_expr(self, node, emit: bool) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, _ARITH_BINOPS):
                if self.is_tainted(sub.left) or self.is_tainted(sub.right):
                    self._flag(
                        sub, emit,
                        f"raw `{_OP_SYMBOL.get(type(sub.op), 'op')}` on a "
                        "context-derived value bypasses ArithmeticContext",
                    )
            elif isinstance(sub, ast.Call):
                np_name = _np_arith_name(sub.func)
                if np_name and (
                    any(self.is_tainted(a) for a in sub.args)
                    or any(self.is_tainted(kw.value) for kw in sub.keywords)
                ):
                    self._flag(
                        sub, emit,
                        f"np.{np_name} on a context-derived value bypasses "
                        "ArithmeticContext",
                    )

    def _flag(self, node, emit: bool, message: str) -> None:
        if not emit:
            return
        key = (node.lineno, message)
        if key in {(f.line, f.message) for f in self.findings}:
            return  # one finding per site per pass
        self.findings.append(
            RawFinding(
                code=CODE,
                severity="error",
                line=node.lineno,
                col=node.col_offset,
                message=message + " (mark `# precise: host-side` if intended)",
                end_line=max(
                    getattr(node, "end_lineno", node.lineno) or node.lineno,
                    self._stmt_end,
                ),
            )
        )

    def run(self) -> list:
        # Fixpoint: taint only grows, so iterate until stable, then emit.
        while True:
            before = (set(self.tainted), set(self.contexts))
            self._scan(self.func.body, emit=False)
            if (self.tainted, self.contexts) == before:
                break
        self._scan(self.func.body, emit=True)
        return self.findings


_OP_SYMBOL = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**", ast.MatMult: "@",
}


def check(module, config) -> list:
    """Entry point: op-coverage findings for one module."""
    if module.layer not in config.kernel_layers:
        return []
    findings = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(
                _KernelTaint(node, config.context_names).run()
            )
    return findings
