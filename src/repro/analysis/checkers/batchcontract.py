"""Batch-contract: every scalar backend entry point has a batch twin.

PR 6's batched evaluation (one field decomposition shared across N
configs) only pays off if *every* registered backend exposes the batch
surface: the sweep auto-batcher groups specs by signature and calls
``<op>_batch`` blind, so a backend missing one falls back to the scalar
path silently — correct numbers, none of the speedup, and a benchmark
that quietly compares different code paths per backend.

For every class in the :class:`ComputeBackend` family
(``AnalysisConfig.backend_base_names`` roots, resolved over the program
MRO), each *public* scalar method that takes a config-axis parameter
(``threshold`` / ``config`` / ``truncation`` — see
``AnalysisConfig.batch_axis_plurals``) must resolve a ``<name>_batch``
counterpart somewhere in its MRO (inheriting the base class's generic
loop satisfies the contract), and that counterpart's signature must be
the scalar signature with the axis pluralized — same names, same order.
Axis-free entry points (``imprecise_multiply``, the SFU ops) are exempt.
A public ``*_batch`` method with no scalar twin is an orphan the
auto-batcher can never reach.

Opt-out rides the standard suppression syntax:
``# repro-lint: disable=batch-contract -- <reason>`` on the scalar def.
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

CODE = "batch-contract"


def _param_names(node) -> list:
    a = node.args
    return [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]


def _def_finding(code, node, message, severity="error"):
    return RawFinding(
        code=code, severity=severity,
        line=node.lineno, col=node.col_offset, message=message,
        end_line=node.lineno,  # anchor on the def line, not the whole body
    )


def check(module, config) -> list:
    """Batch-contract findings for backend classes defined in ``module``."""
    program = config.program
    if program is None:
        return []
    findings = []
    for fn_key, cls in program.classes.items():
        if cls.module is not module or not program.in_backend_family(fn_key):
            continue
        for name, method in sorted(cls.methods.items()):
            if name.startswith("_"):
                continue
            if name.endswith("_batch"):
                scalar_name = name[: -len("_batch")]
                if program.lookup_method(fn_key, scalar_name) is None:
                    findings.append(_def_finding(
                        f"{CODE}-orphan", method.node,
                        f"`{cls.name}.{name}` has no scalar counterpart "
                        f"`{scalar_name}` — the sweep auto-batcher can "
                        "never dispatch to it",
                    ))
                continue
            params = _param_names(method.node)
            axes = [p for p in params if p in config.batch_axis_plurals]
            if not axes:
                continue  # axis-free entry point: no batch surface required
            batch = program.lookup_method(fn_key, f"{name}_batch")
            if batch is None:
                findings.append(_def_finding(
                    f"{CODE}-missing", method.node,
                    f"scalar entry point `{cls.name}.{name}` has no "
                    f"`{name}_batch` counterpart — the signature-grouped "
                    "sweep auto-batcher falls back to the scalar path "
                    "silently on this backend",
                ))
                continue
            expected = [
                config.batch_axis_plurals.get(p, p) for p in params
            ]
            actual = _param_names(batch.node)
            if actual != expected:
                # Anchor on the batch def when it lives in this module,
                # else on the scalar def (the finding must be reportable
                # from the module being checked).
                anchor = batch.node if batch.module is module else method.node
                findings.append(_def_finding(
                    f"{CODE}-mismatch", anchor,
                    f"`{cls.name}.{name}_batch({', '.join(actual)})` does "
                    "not match the scalar signature with the axis "
                    f"pluralized — expected ({', '.join(expected)})",
                ))
    return findings
