"""Checker registry.

Each checker module exposes ``check(module, config) -> list[RawFinding]``.
The engine iterates :data:`ALL_CHECKERS` in order; the dict key is the
checker id that findings carry and suppressions can name.
"""

from __future__ import annotations

from . import cachekey, forksafety, hygiene, imports, opcoverage

__all__ = ["ALL_CHECKERS"]

ALL_CHECKERS = {
    "op-coverage": opcoverage.check,
    "cache-key": cachekey.check,
    "layer-imports": imports.check,
    "fork-safety": forksafety.check,
    "hygiene": hygiene.check,
}
