"""Checker registry.

Each checker module exposes ``check(module, config) -> list[RawFinding]``.
The engine iterates :data:`ALL_CHECKERS` in order; the dict key is the
checker id that findings carry and suppressions can name.

The first five are intra-module (PR 3); the last four are the
interprocedural layer and read the whole-program view the engine plants
on ``config.program`` (call graph + dataflow summaries).
"""

from __future__ import annotations

from . import (
    asyncsafety,
    batchcontract,
    cachekey,
    forksafety,
    hygiene,
    imports,
    interproc,
    opcoverage,
    workerstate,
)

__all__ = ["ALL_CHECKERS"]

ALL_CHECKERS = {
    "op-coverage": opcoverage.check,
    "cache-key": cachekey.check,
    "layer-imports": imports.check,
    "fork-safety": forksafety.check,
    "hygiene": hygiene.check,
    "interproc-op-coverage": interproc.check,
    "async-safety": asyncsafety.check,
    "batch-contract": batchcontract.check,
    "worker-state": workerstate.check,
}
