"""Async-safety: no blocking work on the event loop, no dropped coroutines.

The sweep service (``repro.service``) runs a single asyncio event loop;
one blocking call inside any coroutine stalls *every* connection and
corrupts the latency numbers the service exists to produce.  Two codes:

``async-safety-blocking`` (error)
    A call inside an ``async def`` that blocks the thread — directly
    (``time.sleep``, sync file/socket IO, ``subprocess``, the ``.sweep``
    runner surface) or through a *sync* callee whose whole-program
    summary carries a ``may_block`` witness chain.  The sanctioned fix
    is an executor hop (``await loop.run_in_executor(None, fn, ...)`` /
    ``asyncio.to_thread``): the callable is then an *argument*, not a
    call, so no flagged edge forms.  Calls to blocking *async* targets
    are not re-flagged at the await site — the callee is flagged at its
    own definition.

``async-safety-unawaited`` (error)
    A statement-level bare call that creates a coroutine and drops it:
    ``self._notify(req)`` where ``_notify`` is ``async def``, or a bare
    ``asyncio.sleep(...)``.  Assigned/gathered futures are fine — only
    expression statements are checked.
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

CODE = "async-safety"


def _end(node) -> int:
    return getattr(node, "end_lineno", node.lineno) or node.lineno


def check(module, config) -> list:
    """Async-safety findings for every coroutine defined in ``module``."""
    program = config.program
    if program is None:
        return []
    from ..dataflow import direct_block

    findings = []
    for fn in program.functions_in(module):
        if not fn.is_async:
            continue
        edges = program.calls.get(fn.fid, ())
        edge_by_node = {id(edge.node): edge for edge in edges}
        for edge in edges:
            witness = direct_block(edge, config)
            if not witness:
                for tid in edge.targets:
                    target = program.functions[tid]
                    chain = program.summaries[tid].may_block
                    if chain and not target.is_async:
                        witness = f"{target.display} -> {chain}" \
                            if chain != target.display else chain
                        break
            if witness:
                findings.append(RawFinding(
                    code=f"{CODE}-blocking",
                    severity="error",
                    line=edge.node.lineno,
                    col=edge.node.col_offset,
                    message=(
                        f"blocking call in coroutine `{fn.qualname}`: "
                        f"`{edge.chain or witness}` blocks the event loop "
                        f"(witness: {witness}) — hop through "
                        "`loop.run_in_executor` / `asyncio.to_thread`"
                    ),
                    end_line=_end(edge.node),
                ))
        # Dropped coroutines: statement-level bare calls only.
        for stmt in ast.walk(fn.node):
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)):
                continue
            edge = edge_by_node.get(id(stmt.value))
            if edge is None or edge.awaited:
                continue
            makes_coroutine = edge.external in config.async_externals or any(
                program.functions[tid].is_async for tid in edge.targets
            )
            if makes_coroutine:
                findings.append(RawFinding(
                    code=f"{CODE}-unawaited",
                    severity="error",
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"coroutine `{edge.chain}` created in "
                        f"`{fn.qualname}` but never awaited — the call "
                        "body never runs"
                    ),
                    end_line=_end(stmt),
                ))
    return findings
