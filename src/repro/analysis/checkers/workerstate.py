"""Worker-state: worker-written module globals need a reset hook.

Generalizes the fork-safety heuristic (any module-level mutable
container in a worker-imported layer) into a reachability query: flag
only containers that are actually *written* by a function reachable
from a worker entry point (``_evaluate_chunk`` and friends — see
``AnalysisConfig.worker_entrypoint_names``, plus functions handed to a
pool's ``.submit``).  A container nobody on the worker side mutates is
a static table; one a worker writes without a module-level ``reset()``
hook diverges silently between pool recycles and poisons retry and
resume semantics.

Writes are the dataflow summaries' ``writes_globals`` facts — direct
``global`` assignment, subscript/attribute stores, mutator-method
calls, and mutation through argument aliasing (passing the global into
a parameter the callee mutates, the ``_memo_framework(memo, spec)``
idiom).

Scope is ``AnalysisConfig.worker_state_layers`` (runtime + backends);
suppression: ``# repro-lint: disable=worker-state -- <reason>``.
"""

from __future__ import annotations

import ast

from ..findings import RawFinding
from .forksafety import _has_reset_hook, _is_mutable_literal

__all__ = ["check"]

CODE = "worker-state"


def check(module, config) -> list:
    """Worker-state findings for module-level containers in ``module``."""
    program = config.program
    if program is None or module.layer not in config.worker_state_layers:
        return []
    if _has_reset_hook(module.tree):
        return []

    # Who writes which global of this module, among worker-reachable code.
    reachable = program.worker_reachable()
    writers: dict = {}  # global name -> (writer fid, entry fid)
    for fid, summary in program.summaries.items():
        if fid not in reachable:
            continue
        for relpath, name in summary.writes_globals:
            if relpath == module.relpath:
                writers.setdefault(name, (fid, reachable[fid]))

    if not writers:
        return []

    findings = []
    for stmt in module.tree.body:
        targets = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        if value is None or not targets or not _is_mutable_literal(value):
            continue
        for target in targets:
            hit = writers.get(target.id)
            if hit is None:
                continue
            writer, entry = hit
            findings.append(RawFinding(
                code=CODE,
                severity="warning",
                line=stmt.lineno,
                col=stmt.col_offset,
                message=(
                    f"module-level mutable `{target.id}` is written by "
                    f"`{program.functions[writer].display}` (reachable from "
                    f"worker entry `{program.functions[entry].display}`) "
                    "with no module reset hook — state diverges across "
                    "pool recycles (add a reset()/reset_* function, or "
                    "suppress with a justification)"
                ),
            ))
    return findings
