"""Fork/pickle safety for the process-pool runner.

``repro.runtime`` fans experiments out over ``ProcessPoolExecutor``.  Two
contracts keep that sound:

1. **Specs must pickle.**  An :class:`ExperimentSpec` (or any ``*Spec``)
   constructed with a ``lambda``, a local ``def``, or an open file handle
   cannot cross the process boundary — the failure surfaces later and far
   from the construction site.  The checker flags lambda/handle arguments
   in ``*Spec(...)`` constructor calls and ``.create(...)`` factory calls.

2. **Module-level mutable state needs a reset hook.**  A module-level
   ``dict``/``list``/``set`` in a layer that workers import is inherited
   through fork (or re-imported per worker) and silently diverges between
   parent and children.  The telemetry subsystem established the pattern:
   pair the state with a module-level ``reset()`` (any ``reset*`` function)
   that workers call on startup.  State in a module with such a hook is
   accepted; state without one is flagged.  Deliberate per-process memos
   carry ``# repro-lint: disable=fork-safety -- <reason>``.
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

CODE = "fork-safety"

_MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "Counter", "deque",
                  "OrderedDict"}


def _is_mutable_literal(value) -> bool:
    # Only *empty* containers: an empty module-level dict is a cache that
    # someone intends to mutate; a populated literal is a static registry
    # or constant table, which fork inheritance copies harmlessly.
    if isinstance(value, ast.Dict):
        return not value.keys
    if isinstance(value, (ast.List, ast.Set)):
        return not value.elts
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", ""
        )
        return name in _MUTABLE_CALLS and not value.args and not value.keywords
    return False


def _has_reset_hook(tree: ast.Module) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and (stmt.name == "reset" or stmt.name.startswith("reset_")
             or stmt.name.startswith("_reset"))
        for stmt in tree.body
    )


def _module_level_state(module) -> list:
    findings = []
    if _has_reset_hook(module.tree):
        return findings
    for stmt in module.tree.body:
        targets = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        if value is None or not targets or not _is_mutable_literal(value):
            continue
        names = ", ".join(t.id for t in targets)
        findings.append(
            RawFinding(
                code=CODE,
                severity="warning",
                line=stmt.lineno,
                col=stmt.col_offset,
                message=(
                    f"module-level mutable state `{names}` in worker-imported "
                    f"layer `{module.layer}` has no reset hook — fork "
                    "inheritance diverges silently (add a reset()/reset_* "
                    "function, or suppress with a justification)"
                ),
            )
        )
    return findings


def _unpicklable_spec_args(module) -> list:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", ""
        )
        if not (name.endswith("Spec") or name == "create"):
            continue
        bad = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                bad.append(("a lambda", arg))
            elif isinstance(arg, ast.Call):
                inner = arg.func
                inner_name = getattr(inner, "id", getattr(inner, "attr", ""))
                if inner_name == "open":
                    bad.append(("an open file handle", arg))
        for what, arg in bad:
            findings.append(
                RawFinding(
                    code=CODE,
                    severity="warning",
                    line=arg.lineno,
                    col=arg.col_offset,
                    message=(
                        f"{what} passed to `{name}(...)` will not pickle "
                        "across the process-pool boundary — use a named "
                        "module-level function or a path instead"
                    ),
                )
            )
    return findings


def check(module, config) -> list:
    if module.layer not in config.worker_layers:
        return []
    return _module_level_state(module) + _unpicklable_spec_args(module)
