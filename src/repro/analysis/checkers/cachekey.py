"""Cache-key completeness: frozen spec dataclasses must hash every field.

PR 1 introduced content-addressed result caching: ``IHWConfig.cache_key()``
and ``ExperimentSpec.canonical()`` feed the hash that names cached results.
A dataclass field that affects results but is *absent* from the canonical
form makes two different configurations collide on one cache entry — the
cache then serves stale results for one of them, with no error anywhere.

The mechanical form of the contract: any frozen ``@dataclass`` that
defines a ``canonical()`` (or ``cache_key()``-only) method must reference
every dataclass field as ``self.<field>`` somewhere inside that method
(transitively through other methods of the same class that ``canonical``
calls, e.g. ``IHWConfig.canonical`` delegating multiplier fields to a
helper).  Fields annotated ``ClassVar`` or named with a leading underscore
are exempt, as is a field explicitly listed in a class-level
``_CACHE_KEY_EXEMPT`` tuple — for fields that genuinely cannot affect
results (none exist today).
"""

from __future__ import annotations

import ast

from ..findings import RawFinding

__all__ = ["check"]

CODE = "cache-key"
_CANONICAL_METHODS = ("canonical", "cache_key")


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", ""
        )
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list:
    """(name, lineno) of dataclass fields (annotated class-level names)."""
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((name, stmt.lineno, stmt.col_offset))
    return fields


def _exempt_fields(node: ast.ClassDef) -> set:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "_CACHE_KEY_EXEMPT":
                    try:
                        return set(ast.literal_eval(stmt.value))
                    except (ValueError, SyntaxError):
                        return set()
    return set()


def _methods(node: ast.ClassDef) -> dict:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_attrs_and_calls(func) -> tuple:
    """(self.<attr> reads, self.<method>() calls) inside one method."""
    attrs: set = set()
    calls: set = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name) \
                and sub.value.id == "self":
            attrs.add(sub.attr)
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and isinstance(sub.func.value, ast.Name) \
                and sub.func.value.id == "self":
            calls.add(sub.func.attr)
    return attrs, calls


def check(module, config) -> list:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
            continue
        methods = _methods(node)
        entry = next((m for m in _CANONICAL_METHODS if m in methods), None)
        if entry is None:
            continue
        fields = _dataclass_fields(node)
        if not fields:
            continue
        exempt = _exempt_fields(node)

        # Collect self.<attr> references reachable from the canonical
        # method through same-class method calls (transitive closure).
        covered: set = set()
        seen_methods: set = set()
        frontier = [entry]
        while frontier:
            name = frontier.pop()
            if name in seen_methods or name not in methods:
                continue
            seen_methods.add(name)
            attrs, calls = _self_attrs_and_calls(methods[name])
            covered |= attrs
            frontier.extend(calls)

        for field_name, lineno, col in fields:
            if field_name in covered or field_name in exempt:
                continue
            findings.append(
                RawFinding(
                    code=CODE,
                    severity="error",
                    line=lineno,
                    col=col,
                    message=(
                        f"dataclass field `{field_name}` of `{node.name}` is "
                        f"not referenced by `{entry}()` — a config differing "
                        "only in this field collides on the same cache entry"
                    ),
                )
            )
    return findings
