"""Interprocedural op-coverage: kernel taint across call boundaries.

The intra-procedural checker (:mod:`.opcoverage`) cannot see a device
value *returned from a helper*: ``blocks = _matmul(ctx, a, b)`` looks
like any other call, so a raw ``np.add(blocks, bias)`` in the caller
passes silently — exactly the silently-precise failure mode the contract
exists to prevent.  This checker re-runs the same taint with the
whole-program summaries plugged in (``call_taints`` hook +
``tainted_params`` seeds from :mod:`repro.analysis.dataflow`) and emits
only the findings the intra-procedural pass missed, annotated with the
call-boundary provenance.

Findings carry the plain ``op-coverage`` code, so the documented
``# precise: host-side`` escape hatch suppresses them identically.
"""

from __future__ import annotations

import ast
from dataclasses import replace

from ..findings import RawFinding
from .opcoverage import _KernelTaint

__all__ = ["check"]

CODE = "op-coverage"


def check(module, config) -> list:
    """Op-coverage findings visible only with call-boundary taint."""
    program = config.program
    if program is None or module.layer not in config.kernel_layers:
        return []
    from ..dataflow import run_kernel_taint

    findings = []
    for fn in program.functions_in(module):
        interproc, _ = run_kernel_taint(
            program, fn, program.summaries, config
        )
        if not interproc.findings:
            continue
        intra = _KernelTaint(fn.node, config.context_names)
        intra.run()
        seen = {(f.line, f.col) for f in intra.findings}
        for item in interproc.findings:
            if (item.line, item.col) in seen:
                continue  # already reported by the intra-procedural pass
            findings.append(replace(
                item,
                message=item.message.replace(
                    "context-derived value",
                    "device value that crossed a helper-call boundary",
                ),
            ))
    return findings
