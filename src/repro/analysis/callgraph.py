"""Whole-program call graph over the already-parsed module set.

The per-module checkers see one file at a time; the contracts added on
top of them (imprecision escaping a kernel helper, blocking work reached
*through* a sync helper from a coroutine, worker-written module state)
are properties of call *chains*.  This module resolves intra-package
calls into an explicit graph the dataflow pass (:mod:`.dataflow`) folds
summaries over:

- **module functions** — plain-name and ``module.attr`` calls, through
  the import maps (absolute, relative, and re-export chains like
  ``repro.runtime.__init__`` forwarding ``runner`` names);
- **methods** — class-scoped resolution: ``self.m()`` through the
  package-local MRO, ``self.attr.m()`` through attribute types inferred
  from ``__init__`` assignments, ``x = ClassName(...); x.m()`` through
  local construction sites, and ``ClassName(...)`` to ``__init__``;
- **backend registry dispatch** — a method call on an *unresolvable*
  receiver whose name belongs to the :class:`ComputeBackend` family
  (``AnalysisConfig.backend_base_names``) conservatively edges to every
  registered implementation, mirroring ``get_backend(...)`` dispatch.

Anything else stays unresolved: the edge records the raw dotted chain
(``writer.drain``) and, when the leading name is a known external
import, the canonical external name (``time.sleep``, ``numpy.add``) the
blocking-call classifier keys on.  Lambdas and nested ``def`` bodies are
*not* attributed to the enclosing function — a callable handed to
``loop.run_in_executor`` must not count as called on the event loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["FunctionNode", "ClassInfo", "CallEdge", "Program", "build_program"]


def dotted_name(node) -> str:
    """Dotted text of a name/attribute chain, '' for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def module_dotted(package: str, relpath: str) -> str:
    """Importable name of a module, e.g. ``repro.service.server``."""
    parts = relpath[:-3].split("/")  # strip ".py"
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


def walk_scope(node):
    """``ast.walk`` over one function scope, skipping nested defs/lambdas."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_BARRIERS):
                continue
            stack.append(child)


def stmts_in_scope(body):
    """Statements of one function scope in source order, nested defs skipped."""
    for stmt in body:
        if isinstance(stmt, _SCOPE_BARRIERS):
            continue
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            yield from stmts_in_scope(getattr(stmt, attr, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from stmts_in_scope(handler.body)


@dataclass
class FunctionNode:
    """One module-level function or class method."""

    fid: str  # "service/server.py::SweepService._handle_sweep"
    module: object  # ModuleInfo
    name: str
    qualname: str  # "SweepService._handle_sweep" / "run"
    node: ast.AST
    cls: str | None = None  # owning ClassInfo key, None for plain functions
    is_async: bool = False

    @property
    def params(self) -> tuple:
        """Positional + keyword-only parameter names, in order."""
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
        return tuple(names)

    @property
    def display(self) -> str:
        return self.qualname


@dataclass
class ClassInfo:
    """One class definition and what the graph knows about it."""

    ckey: str  # "runtime/cache.py::ResultCache"
    module: object
    name: str
    node: ast.ClassDef
    bases: tuple = ()  # dotted base-class names as written
    methods: dict = field(default_factory=dict)  # name -> FunctionNode
    attr_types: dict = field(default_factory=dict)  # attr -> set of ckeys


@dataclass
class CallEdge:
    """One call site inside a function and where it may land."""

    node: ast.Call
    targets: tuple = ()  # FunctionNode ids (may be several under dispatch)
    external: str = ""  # canonical external name ("time.sleep"), if known
    chain: str = ""  # raw dotted text at the call site
    awaited: bool = False


class Program:
    """The resolved whole-program view handed to checkers via the config.

    Built once per analysis run by :func:`build_program`; the dataflow
    pass populates :attr:`summaries` (fid -> ``Summary``) afterwards.
    """

    def __init__(self, package: str):
        self.package = package
        self.modules: dict = {}  # relpath -> ModuleInfo
        self.mod_by_name: dict = {}  # dotted module name -> relpath
        self.functions: dict = {}  # fid -> FunctionNode
        self.classes: dict = {}  # ckey -> ClassInfo
        self.calls: dict = {}  # fid -> list[CallEdge]
        self.summaries: dict = {}  # fid -> dataflow.Summary
        self.module_globals: dict = {}  # relpath -> set of assigned names
        self.worker_entrypoints: tuple = ()  # fids
        self.dispatch_family: frozenset = frozenset()  # backend-family ckeys
        self._dispatch_methods: dict = {}  # method name -> tuple of fids
        self._bindings: dict = {}  # relpath -> {name: binding tuple}
        self._mro_cache: dict = {}
        self._functions_by_module: dict = {}  # relpath -> list[FunctionNode]
        self._worker_reachable: dict | None = None  # fid -> entry fid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def functions_in(self, module) -> list:
        """Module-level functions and methods defined in ``module``."""
        return self._functions_by_module.get(module.relpath, [])

    def mro(self, ckey: str) -> tuple:
        """Package-local linearization: the class, then bases breadth-first."""
        cached = self._mro_cache.get(ckey)
        if cached is not None:
            return cached
        order, queue, seen = [], [ckey], set()
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            order.append(current)
            cls = self.classes[current]
            for base in cls.bases:
                resolved = self.resolve_dotted(cls.module.relpath, base)
                if resolved and resolved[0] == "class":
                    queue.append(resolved[1])
        result = tuple(order)
        self._mro_cache[ckey] = result
        return result

    def lookup_method(self, ckey: str, name: str):
        """The :class:`FunctionNode` implementing ``name`` for ``ckey``."""
        for current in self.mro(ckey):
            found = self.classes[current].methods.get(name)
            if found is not None:
                return found
        return None

    def in_backend_family(self, ckey: str) -> bool:
        return ckey in self.dispatch_family

    def worker_reachable(self) -> dict:
        """``{fid: entry fid}`` for functions reachable from worker entry
        points (an arbitrary witness entry per function)."""
        if self._worker_reachable is None:
            reach: dict = {}
            queue = [(fid, fid) for fid in self.worker_entrypoints]
            while queue:
                fid, entry = queue.pop()
                if fid in reach:
                    continue
                reach[fid] = entry
                for edge in self.calls.get(fid, ()):
                    for target in edge.targets:
                        if target not in reach:
                            queue.append((target, entry))
            self._worker_reachable = reach
        return self._worker_reachable

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _module_rel(self, dotted: str):
        """Package-internal relpath of a dotted module name, or None."""
        if dotted == self.package:
            return self.mod_by_name.get(dotted)
        if not dotted.startswith(self.package + "."):
            return None
        return self.mod_by_name.get(dotted)

    def resolve_name(self, relpath: str, name: str, _seen=None):
        """Resolve a module-level binding, chasing re-export imports.

        Returns ``("func", fid)``, ``("class", ckey)``,
        ``("module", relpath)``, ``("ext", dotted)``, or None.
        """
        binding = self._bindings.get(relpath, {}).get(name)
        if binding is None:
            return None
        if binding[0] != "name":
            return binding
        _, target_rel, attr = binding
        seen = _seen if _seen is not None else set()
        key = (target_rel, attr)
        if key in seen:
            return None
        seen.add(key)
        resolved = self.resolve_name(target_rel, attr, seen)
        if resolved is None:
            # ``from repro import runtime`` style submodule import.
            sub = module_dotted(self.package, target_rel) + "." + attr
            sub_rel = self._module_rel(sub)
            if sub_rel is not None:
                return ("module", sub_rel)
        return resolved

    def _chase(self, binding):
        """Resolve an un-chased ``("name", relpath, attr)`` re-export."""
        if binding is None or binding[0] != "name":
            return binding
        _, target_rel, attr = binding
        resolved = self.resolve_name(target_rel, attr)
        if resolved is None:
            sub = module_dotted(self.package, target_rel) + "." + attr
            sub_rel = self._module_rel(sub)
            if sub_rel is not None:
                return ("module", sub_rel)
        return resolved

    def resolve_dotted(self, relpath: str, dotted: str, local_bindings=None):
        """Resolve a dotted chain from inside ``relpath`` (same returns)."""
        if not dotted:
            return None
        parts = dotted.split(".")
        first = parts[0]
        binding = None
        if local_bindings:
            binding = self._chase(local_bindings.get(first))
        if binding is None:
            binding = self.resolve_name(relpath, first)
        if binding is None:
            return None
        for part in parts[1:]:
            kind = binding[0]
            if kind == "module":
                binding = self.resolve_name(binding[1], part)
            elif kind == "ext":
                binding = ("ext", binding[1] + "." + part)
            elif kind == "class":
                method = self.lookup_method(binding[1], part)
                binding = ("func", method.fid) if method is not None else None
            else:
                binding = None
            if binding is None:
                return None
        return binding


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def build_program(modules, config) -> Program:
    """Index ``modules`` and resolve every call site (see module docstring)."""
    program = Program(config.package)
    for module in modules:
        program.modules[module.relpath] = module
        program.mod_by_name[module_dotted(config.package, module.relpath)] = \
            module.relpath

    for module in modules:
        _index_module(program, module)
    for module in modules:
        _collect_imports(program, module)
    _infer_attr_types(program)
    _build_dispatch(program, config)
    for fn in list(program.functions.values()):
        program.calls[fn.fid] = _extract_calls(program, fn)
    _find_worker_entrypoints(program, config)
    return program


def _index_module(program: Program, module) -> None:
    functions: list = []
    global_names: set = set()
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionNode(
                fid=f"{module.relpath}::{stmt.name}",
                module=module, name=stmt.name, qualname=stmt.name,
                node=stmt, is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
            program.functions[fn.fid] = fn
            functions.append(fn)
            program._bindings.setdefault(module.relpath, {})[stmt.name] = \
                ("func", fn.fid)
        elif isinstance(stmt, ast.ClassDef):
            ckey = f"{module.relpath}::{stmt.name}"
            cls = ClassInfo(
                ckey=ckey, module=module, name=stmt.name, node=stmt,
                bases=tuple(filter(None, (dotted_name(b) for b in stmt.bases))),
            )
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = FunctionNode(
                        fid=f"{module.relpath}::{stmt.name}.{member.name}",
                        module=module, name=member.name,
                        qualname=f"{stmt.name}.{member.name}",
                        node=member, cls=ckey,
                        is_async=isinstance(member, ast.AsyncFunctionDef),
                    )
                    cls.methods[member.name] = method
                    program.functions[method.fid] = method
                    functions.append(method)
            program.classes[ckey] = cls
            program._bindings.setdefault(module.relpath, {})[stmt.name] = \
                ("class", ckey)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    global_names.add(target.id)
    program._functions_by_module[module.relpath] = functions
    program.module_globals[module.relpath] = global_names


def _import_bindings(program: Program, relpath: str, stmt) -> dict:
    """Bindings one import statement introduces (module- or function-level)."""
    out: dict = {}
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            rel = program._module_rel(alias.name)
            target = ("module", rel) if rel is not None else ("ext", alias.name)
            if alias.asname:
                out[alias.asname] = target
            else:
                top = alias.name.split(".")[0]
                top_rel = program._module_rel(top)
                out[top] = ("module", top_rel) if top_rel is not None \
                    else ("ext", top)
    elif isinstance(stmt, ast.ImportFrom):
        base = _from_base(program, relpath, stmt)
        base_rel = program._module_rel(base)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            if base_rel is not None:
                sub_rel = program._module_rel(f"{base}.{alias.name}")
                if sub_rel is not None:
                    out[bound] = ("module", sub_rel)
                else:
                    out[bound] = ("name", base_rel, alias.name)
            else:
                out[bound] = ("ext", f"{base}.{alias.name}" if base
                              else alias.name)
    return out


def _from_base(program: Program, relpath: str, node: ast.ImportFrom) -> str:
    if node.level == 0:
        return node.module or ""
    parts = module_dotted(program.package, relpath).split(".")
    if not relpath.endswith("__init__.py"):
        parts = parts[:-1]
    parts = parts[: max(len(parts) - (node.level - 1), 0)]
    base = ".".join(parts)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def _collect_imports(program: Program, module) -> None:
    bindings = program._bindings.setdefault(module.relpath, {})
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for name, binding in _import_bindings(
                program, module.relpath, stmt
            ).items():
                bindings.setdefault(name, binding)


def _infer_attr_types(program: Program) -> None:
    """``self.attr = ClassName(...)`` in ``__init__`` types the attribute."""
    for cls in program.classes.values():
        init = cls.methods.get("__init__")
        if init is None:
            continue
        local_types = _local_class_types(program, init)
        for stmt in stmts_in_scope(init.node.body):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                chain = dotted_name(target)
                if not (chain.startswith("self.") and chain.count(".") == 1):
                    continue
                attr = chain.split(".")[1]
                ckey = _class_of_expr(program, init, stmt.value, local_types)
                if ckey is not None:
                    cls.attr_types.setdefault(attr, set()).add(ckey)


def _local_class_types(program: Program, fn: FunctionNode) -> dict:
    """``{local name: ckey}`` for single-class locals of one function."""
    local_bindings = _scope_imports(program, fn)
    types: dict = {}
    for stmt in stmts_in_scope(fn.node.body):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        ckey = _constructed_class(program, fn, stmt.value, local_bindings)
        if ckey is not None:
            types[target.id] = ckey
        else:
            types.pop(target.id, None)
    return types


def _constructed_class(program, fn, value, local_bindings):
    if not isinstance(value, ast.Call):
        return None
    resolved = program.resolve_dotted(
        fn.module.relpath, dotted_name(value.func), local_bindings
    )
    if resolved and resolved[0] == "class":
        return resolved[1]
    return None


def _class_of_expr(program, fn, value, local_types):
    if isinstance(value, ast.Name):
        return local_types.get(value.id)
    return _constructed_class(
        program, fn, value, _scope_imports(program, fn)
    )


def _scope_imports(program: Program, fn: FunctionNode) -> dict:
    """Function-level (lazy) imports, resolved like module-level ones."""
    out: dict = {}
    for stmt in stmts_in_scope(fn.node.body):
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            out.update(_import_bindings(program, fn.module.relpath, stmt))
    return out


def _build_dispatch(program: Program, config) -> None:
    base_keys = {
        ckey for ckey, cls in program.classes.items()
        if cls.name in config.backend_base_names
    }
    if not base_keys:
        return
    family = {
        ckey for ckey in program.classes
        if base_keys & set(program.mro(ckey))
    } | base_keys
    program.dispatch_family = frozenset(family)
    methods: dict = {}
    for ckey in family:
        for name, fn in program.classes[ckey].methods.items():
            if name.startswith("_"):
                continue
            methods.setdefault(name, []).append(fn.fid)
    program._dispatch_methods = {
        name: tuple(fids) for name, fids in methods.items()
    }


def _extract_calls(program: Program, fn: FunctionNode) -> list:
    relpath = fn.module.relpath
    local_bindings = _scope_imports(program, fn)
    local_types = _local_class_types(program, fn)
    awaited_ids = {
        id(node.value)
        for node in walk_scope(fn.node)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
    }
    edges = []
    for node in walk_scope(fn.node):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_name(node.func)
        targets: tuple = ()
        external = ""
        if chain:
            targets, external = _resolve_call(
                program, fn, chain, local_bindings, local_types
            )
        edges.append(CallEdge(
            node=node, targets=targets, external=external, chain=chain,
            awaited=id(node) in awaited_ids,
        ))
    return edges


def _resolve_call(program, fn, chain, local_bindings, local_types):
    parts = chain.split(".")
    relpath = fn.module.relpath

    # self.m() / self.attr.m() — class-scoped resolution.
    if parts[0] == "self" and fn.cls is not None:
        if len(parts) == 2:
            method = program.lookup_method(fn.cls, parts[1])
            if method is not None:
                return (method.fid,), ""
        elif len(parts) == 3:
            attr_types = program.classes[fn.cls].attr_types.get(parts[1], ())
            found = tuple(
                m.fid for ckey in sorted(attr_types)
                for m in [program.lookup_method(ckey, parts[2])]
                if m is not None
            )
            if found:
                return found, ""
        return _dispatch_fallback(program, parts[-1])

    # x = ClassName(...); x.m()
    if len(parts) == 2 and parts[0] in local_types:
        method = program.lookup_method(local_types[parts[0]], parts[1])
        if method is not None:
            return (method.fid,), ""

    resolved = program.resolve_dotted(relpath, chain, local_bindings)
    if resolved is not None:
        kind, value = resolved
        if kind == "func":
            return (value,), ""
        if kind == "class":
            init = program.lookup_method(value, "__init__")
            return ((init.fid,) if init is not None else ()), ""
        if kind == "ext":
            return (), value
        return (), ""

    if len(parts) > 1:
        return _dispatch_fallback(program, parts[-1])
    return (), ""


def _dispatch_fallback(program, method_name):
    """Backend-registry dispatch: unknown receiver, family method name."""
    impls = program._dispatch_methods.get(method_name)
    if impls:
        return impls, ""
    return (), ""


def _find_worker_entrypoints(program: Program, config) -> None:
    entry = [
        fn.fid for fn in program.functions.values()
        if fn.name in config.worker_entrypoint_names
    ]
    # Functions handed by name to a pool's ``.submit(fn, ...)`` are worker
    # entry points too — that is how fixture packages mark theirs.
    for fid, edges in program.calls.items():
        owner = program.functions[fid]
        for edge in edges:
            if not edge.chain.endswith(".submit") or not edge.node.args:
                continue
            first = edge.node.args[0]
            if isinstance(first, ast.Name):
                resolved = program.resolve_name(
                    owner.module.relpath, first.id
                )
                if resolved and resolved[0] == "func":
                    entry.append(resolved[1])
    program.worker_entrypoints = tuple(dict.fromkeys(entry))
