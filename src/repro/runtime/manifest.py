"""Sweep manifests: durable progress records for checkpoint/resume.

A long sweep that dies halfway through leaves its completed results in
the :class:`~repro.runtime.cache.ResultCache`, but nothing records *which
sweep* they belonged to or how far it got.  A :class:`SweepManifest`
fills that gap: one JSON document per sweep identity (SHA-256 over the
spec's canonical form plus every configuration's cache key), listing the
configurations and which of them completed.

The runner flushes the manifest periodically (every ``checkpoint_every``
completions), on abort, and at the end (with ``status: "complete"``).
``repro sweep --resume`` reads it back to report how many configurations
an interrupted run already finished — the results themselves are served
by the content-addressed cache, so a resumed sweep recomputes zero
completed configs.

Manifests live under ``<cache root>/manifests/<sweep id>.json`` and are
written atomically (tempfile + ``os.replace``), like every other cache
artifact.  Like cache writes, they only ever happen in the parent
process.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = ["SweepManifest", "MANIFEST_VERSION", "atomic_write_text"]

MANIFEST_VERSION = 1
MANIFEST_DIRNAME = "manifests"


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tempfile + ``os.replace``).

    The idiom every durable cache artifact uses — manifests, quarantine
    records, and the service queue journal's compaction all funnel
    through it so crash-safety lives in one place.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


class SweepManifest:
    """Progress record of one sweep identity."""

    def __init__(self, path, sweep_id: str, spec_doc: dict, config_keys: dict):
        self.path = Path(path)
        self.sweep_id = sweep_id
        self.spec_doc = spec_doc
        self.config_keys = dict(config_keys)  # name -> cache key
        self.completed: set = set()
        #: Configs a *previous* run of this same sweep had completed
        #: (empty when no manifest existed on disk).
        self.previously_completed: frozenset = frozenset()
        self._load_existing()
        self.completed |= set(self.previously_completed)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_sweep(cls, cache, spec, configs) -> "SweepManifest":
        """The manifest addressing ``(spec, configs)`` under ``cache``."""
        config_keys = {
            name: cache.key(spec, config) for name, config in configs.items()
        }
        identity = {"spec": spec.canonical(), "configs": config_keys}
        payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        sweep_id = hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]
        path = Path(cache.root) / MANIFEST_DIRNAME / f"{sweep_id}.json"
        return cls(path, sweep_id, spec.canonical(), config_keys)

    def _load_existing(self) -> None:
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return  # absent or corrupt: start fresh (never fatal)
        if doc.get("version") != MANIFEST_VERSION:
            return
        if doc.get("sweep_id") != self.sweep_id:
            return
        self.previously_completed = frozenset(
            name for name in doc.get("completed", []) if name in self.config_keys
        )

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def mark(self, name: str) -> None:
        self.completed.add(name)

    @property
    def is_complete(self) -> bool:
        return set(self.config_keys) <= self.completed

    @property
    def status(self) -> str:
        return "complete" if self.is_complete else "running"

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "sweep_id": self.sweep_id,
            "status": self.status,
            "spec": self.spec_doc,
            "configs": self.config_keys,
            "completed": sorted(self.completed & set(self.config_keys)),
            "updated": time.time(),
        }

    def flush(self) -> Path:
        """Atomically persist the current progress; returns the path."""
        return atomic_write_text(
            self.path, json.dumps(self.to_dict(), indent=1, sort_keys=True)
        )
