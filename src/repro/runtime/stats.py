"""Timing and cache statistics of one runner invocation.

Every :meth:`repro.runtime.ExperimentRunner.sweep` (and ``map``) call
produces a :class:`RunnerStats`: wall time, per-task latencies, how many
results came from the cache, and the estimated speedup over a one-task-at-
a-time execution.  The CLI and :mod:`repro.reporting` render its
:meth:`~RunnerStats.summary`; benchmarks persist :meth:`~RunnerStats.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TaskTiming", "RunnerStats", "SPEEDUP_CAP", "group_key", "record_group",
]


def group_key(config) -> str:
    """Human-readable signature-group label of one configuration.

    Derived from :meth:`~repro.core.config.IHWConfig.batch_signature` —
    the same partition the batched sweep dispatcher uses — so per-group
    hit/miss accounting (``repro sweep --stats``) and the sweep service's
    ``/queuez`` view group work identically.
    """
    enabled, multiplier_mode, sfu_mode = config.batch_signature()
    units = "+".join(enabled) if enabled else "precise"
    return f"{units}|{multiplier_mode}|{sfu_mode}"


def record_group(groups: dict, key: str, hit: bool) -> None:
    """Count one cache outcome under its signature group (in place)."""
    entry = groups.setdefault(key, {"hits": 0, "misses": 0})
    entry["hits" if hit else "misses"] += 1

#: Upper bound on the reported ``speedup_vs_sequential``.  The ratio is
#: compute-time / wall-time, so a warm run serving tiny residual compute
#: from a fast wall clock can produce absurd figures (thousands of "x")
#: that mean nothing about parallelism.  Anything above this cap is
#: clamped; real fan-out speedups are bounded by the worker count, which
#: is orders of magnitude below it.
SPEEDUP_CAP = 64.0


@dataclass(frozen=True)
class TaskTiming:
    """One evaluated (or cache-served) task."""

    name: str
    seconds: float  # compute time for misses, lookup time for hits
    cached: bool = False
    attempts: int = 1  # executions it took (1 = first try succeeded)
    fallback: bool = False  # completed on the reference-backend fallback


@dataclass
class RunnerStats:
    """Aggregate outcome of one runner invocation."""

    wall_seconds: float = 0.0
    max_workers: int = 1
    chunk_size: int = 1
    tasks: list = field(default_factory=list)
    # Reliability outcome (all zero/False on an undisturbed run):
    retries: int = 0  # task re-executions after a failure
    fallbacks: int = 0  # retries that switched to the reference backend
    timeouts: int = 0  # chunk deadlines that expired (pool was terminated)
    pool_rebuilds: int = 0  # process pools lost and rebuilt
    degraded: bool = False  # finished on the sequential inline path
    resumed_skipped: int = 0  # configs a --resume run found already complete
    notes: list = field(default_factory=list)  # human-readable reliability notes
    # Per batch-signature-group cache accounting:
    # {group_key: {"hits": int, "misses": int}} (see :func:`group_key`).
    signature_groups: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.tasks if t.cached)

    @property
    def cache_misses(self) -> int:
        return self.n_tasks - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.n_tasks if self.tasks else 0.0

    @property
    def compute_seconds(self) -> float:
        """Summed per-task compute time of the non-cached tasks."""
        return sum(t.seconds for t in self.tasks if not t.cached)

    @property
    def speedup_vs_sequential(self) -> float:
        """Summed compute time / wall time, clamped to sane territory.

        For a parallel cold run this approaches the effective worker
        count.  Degenerate runs are normalized instead of reported raw:

        - no tasks, zero wall time, or an all-hits warm run (zero compute)
          report ``1.0`` — there was no parallel work to speed up, and the
          raw ratio would be either undefined or a meaningless explosion
          of residual timer noise; compare wall times across runs instead;
        - anything above :data:`SPEEDUP_CAP` is clamped to it.
        """
        if not self.tasks or self.wall_seconds <= 0:
            return 1.0
        compute = self.compute_seconds
        if compute <= 0:
            return 1.0
        return min(compute / self.wall_seconds, SPEEDUP_CAP)

    @property
    def mean_task_seconds(self) -> float:
        computed = [t.seconds for t in self.tasks if not t.cached]
        return sum(computed) / len(computed) if computed else 0.0

    # ------------------------------------------------------------------
    # Rendering / persistence
    # ------------------------------------------------------------------
    @property
    def had_faults(self) -> bool:
        """Whether any reliability event occurred during the run."""
        return bool(
            self.retries or self.fallbacks or self.timeouts
            or self.pool_rebuilds or self.degraded
        )

    def reliability_summary(self) -> str:
        """One-line account of the run's reliability events ("" when clean)."""
        if not self.had_faults and not self.resumed_skipped:
            return ""
        parts = []
        if self.retries:
            parts.append(f"{self.retries} retr{'ies' if self.retries != 1 else 'y'}")
        if self.fallbacks:
            parts.append(f"{self.fallbacks} backend fallback"
                         f"{'s' if self.fallbacks != 1 else ''}")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeout"
                         f"{'s' if self.timeouts != 1 else ''}")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuild"
                         f"{'s' if self.pool_rebuilds != 1 else ''}")
        if self.degraded:
            parts.append("degraded to sequential")
        if self.resumed_skipped:
            parts.append(f"resumed past {self.resumed_skipped} completed")
        return ", ".join(parts)

    def summary(self) -> str:
        text = (
            f"{self.n_tasks} task{'s' if self.n_tasks != 1 else ''} "
            f"in {self.wall_seconds:.3f}s wall "
            f"({self.max_workers} worker{'s' if self.max_workers != 1 else ''}, "
            f"chunk {self.chunk_size}): "
            f"cache hit rate {self.hit_rate:.0%} "
            f"({self.cache_hits} hit / {self.cache_misses} miss), "
            f"compute {self.compute_seconds:.3f}s, "
            f"speedup vs sequential {self.speedup_vs_sequential:.2f}x"
        )
        reliability = self.reliability_summary()
        return f"{text} [{reliability}]" if reliability else text

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "max_workers": self.max_workers,
            "chunk_size": self.chunk_size,
            "n_tasks": self.n_tasks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "compute_seconds": self.compute_seconds,
            "speedup_vs_sequential": self.speedup_vs_sequential,
            "mean_task_seconds": self.mean_task_seconds,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "resumed_skipped": self.resumed_skipped,
            "notes": list(self.notes),
            "signature_groups": {
                key: dict(counts)
                for key, counts in self.signature_groups.items()
            },
            "tasks": [
                {"name": t.name, "seconds": t.seconds, "cached": t.cached,
                 "attempts": t.attempts, "fallback": t.fallback}
                for t in self.tasks
            ],
        }
