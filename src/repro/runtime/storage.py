"""Pluggable storage backends of the result cache.

:class:`~repro.runtime.cache.ResultCache` owns the *semantics* of a cache
entry — content addressing, serialization, checksum validation, and
quarantine policy — while a :class:`CacheBackend` owns the *bytes*: where
an entry's JSON document and npz payload live and how concurrent writers
coordinate.  The protocol is four operations (get / put / contains / lock)
plus maintenance hooks:

- :class:`DirectoryBackend` — the default local store, byte-compatible
  with the pre-extraction on-disk layout (``<key[:2]>/<key>.json`` +
  ``.npz`` under ``.repro_cache/``), so existing cache trees stay valid;
- :class:`HTTPCacheBackend` — a remote store served by a sweep-service
  peer's ``/cache/v1`` endpoints (``docs/SERVICE.md``), so N boxes share
  one warm set.  Transport trouble raises :class:`CacheBackendError`,
  which the cache layer treats as a plain miss (never a quarantine —
  the peer's bytes are not damaged just because the network dropped).

Both backends are safe to call from pool workers and scheduler threads;
neither holds cross-call state beyond configuration.
"""

from __future__ import annotations

import http.client
import os
import time
import urllib.parse
from pathlib import Path

__all__ = [
    "CacheBackend",
    "CacheBackendError",
    "DirectoryBackend",
    "HTTPCacheBackend",
    "QUARANTINE_DIRNAME",
    "STALE_LOCK_SECONDS",
]

QUARANTINE_DIRNAME = "quarantine"

#: Age after which an advisory write lock (or orphaned temp file) left by
#: a crashed writer is considered stale and removed.
STALE_LOCK_SECONDS = 300.0


class CacheBackendError(RuntimeError):
    """Transport/storage failure distinct from a damaged entry.

    Raised by backends when the store itself is unreachable or refuses the
    operation (network down, peer returned 5xx).  The cache layer counts
    it and treats reads as misses — it never quarantines on transport
    errors, because the stored bytes may be perfectly fine.
    """


class CacheBackend:
    """Storage protocol behind :class:`~repro.runtime.cache.ResultCache`.

    Subclasses implement byte-level entry storage addressed by the cache's
    hex SHA-256 keys.  ``read_json``/``read_npz`` return ``None`` for an
    absent entry and raise :class:`CacheBackendError` for transport
    failures; ``write_entry`` must make the JSON document visible only
    after the npz payload (the document's presence is what marks an entry
    readable).
    """

    name = "abstract"

    #: Stale advisory locks reclaimed by :meth:`acquire_lock`; the cache
    #: layer folds the delta into ``CacheStats.stale_cleaned``.
    stale_locks_reclaimed = 0

    # -- core protocol: get / put / contains / lock --------------------
    def read_json(self, key: str) -> str | None:
        raise NotImplementedError

    def read_npz(self, key: str) -> bytes | None:
        raise NotImplementedError

    def write_entry(self, key: str, json_text: str,
                    npz_bytes: bytes | None) -> None:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def acquire_lock(self, key: str) -> bool:
        raise NotImplementedError

    def release_lock(self, key: str) -> None:
        raise NotImplementedError

    # -- maintenance (optional; remote stores may no-op) ---------------
    @property
    def local_root(self) -> Path | None:
        """Directory root for stores with one, else None (remote)."""
        return None

    def quarantine(self, key: str) -> bool:
        """Move a damaged entry aside; False when unsupported/absent."""
        return False

    def remove(self, key: str) -> None:
        pass

    def entry_count(self) -> int:
        return 0

    def cleanup_stale(self, max_age_seconds: float = STALE_LOCK_SECONDS) -> int:
        return 0

    def enforce_limit(self, max_entries: int) -> int:
        """Evict oldest entries beyond ``max_entries``; returns evictions."""
        return 0

    def clear(self) -> int:
        return 0

    def describe(self) -> str:
        return self.name


class DirectoryBackend(CacheBackend):
    """The default on-disk store (layout unchanged from PR 1/PR 5).

    Layout under ``root``::

        <key[:2]>/<key>.json   entry document
        <key[:2]>/<key>.npz    output array payload (when present)
        <key[:2]>/<key>.lock   advisory in-flight write marker (transient)
        quarantine/            damaged entries moved aside, never served
        manifests/<id>.json    sweep progress records (checkpoint/resume)

    Writes are crash-safe: every file lands via a sibling temp path and
    ``os.replace``, npz before json, so a crash mid-write can never leave
    a half-entry that parses.
    """

    name = "directory"

    def __init__(self, root):
        self.root = Path(root)

    # -- addressing ----------------------------------------------------
    def paths(self, key: str) -> tuple:
        shard = self.root / key[:2]
        return shard / f"{key}.json", shard / f"{key}.npz"

    def _lock_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.lock"

    @property
    def local_root(self) -> Path | None:
        return self.root

    def describe(self) -> str:
        return str(self.root)

    # -- core protocol -------------------------------------------------
    def read_json(self, key: str) -> str | None:
        json_path, _ = self.paths(key)
        try:
            return json_path.read_text()
        except FileNotFoundError:
            return None

    def read_npz(self, key: str) -> bytes | None:
        _, npz_path = self.paths(key)
        try:
            return npz_path.read_bytes()
        except FileNotFoundError:
            return None

    def write_entry(self, key: str, json_text: str,
                    npz_bytes: bytes | None) -> None:
        json_path, npz_path = self.paths(key)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic landing: npz first, json last — the json's presence is
        # what makes the entry visible to readers.
        if npz_bytes is not None:
            tmp_npz = npz_path.with_name(f"{key}.tmp.npz")
            tmp_npz.write_bytes(npz_bytes)
            os.replace(tmp_npz, npz_path)
        tmp_json = json_path.with_name(f"{key}.json.tmp")
        tmp_json.write_text(json_text)
        os.replace(tmp_json, json_path)

    def contains(self, key: str) -> bool:
        json_path, _ = self.paths(key)
        return json_path.exists()

    def acquire_lock(self, key: str) -> bool:
        """Create the per-key advisory lock; False when held by another.

        The lock only signals an in-flight write to concurrent writers
        (correctness comes from the atomic renames); a lock older than
        :data:`STALE_LOCK_SECONDS` belongs to a crashed writer and is
        reclaimed.  Returns whether a second (stale-reclaim) pass also
        found the lock held.
        """
        lock_path = self._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):  # second pass after reclaiming a stale lock
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    continue  # lock vanished between open and stat: retry
                if age <= STALE_LOCK_SECONDS:
                    return False
                lock_path.unlink(missing_ok=True)
                self.stale_locks_reclaimed += 1
                continue
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            os.close(fd)
            return True
        return False

    def release_lock(self, key: str) -> None:
        self._lock_path(key).unlink(missing_ok=True)

    # -- maintenance ---------------------------------------------------
    def remove(self, key: str) -> None:
        for path in self.paths(key):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def quarantine(self, key: str) -> bool:
        """Move a damaged entry's files aside instead of deleting them."""
        quarantine_dir = self.root / QUARANTINE_DIRNAME
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        moved = False
        for path in self.paths(key):
            if not path.exists():
                continue
            try:
                os.replace(path, quarantine_dir / path.name)
                moved = True
            except OSError:
                path.unlink(missing_ok=True)  # cross-device: drop instead
        return moved

    def quarantine_count(self) -> int:
        return sum(
            1 for _ in (self.root / QUARANTINE_DIRNAME).glob("*.json")
        )

    def entry_count(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def cleanup_stale(self, max_age_seconds: float = STALE_LOCK_SECONDS) -> int:
        """Remove stale locks and orphaned temp files; returns the count.

        Both are the remains of a writer that died mid-write; neither is
        ever read, so removal is always safe.
        """
        removed = 0
        now = time.time()
        for pattern in ("??/*.lock", "??/*.tmp", "??/*.tmp.npz",
                        "manifests/*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    if now - path.stat().st_mtime > max_age_seconds:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue  # concurrent cleanup or vanished file
        return removed

    def enforce_limit(self, max_entries: int) -> int:
        entries = sorted(self.root.glob("??/*.json"),
                         key=lambda p: p.stat().st_mtime)
        evicted = 0
        for stale in entries[: max(0, len(entries) - max_entries)]:
            self.remove(stale.stem)
            evicted += 1
        return evicted

    def clear(self) -> int:
        removed = 0
        for json_path in list(self.root.glob("??/*.json")):
            self.remove(json_path.stem)
            removed += 1
        return removed


class HTTPCacheBackend(CacheBackend):
    """Remote store served by a sweep-service peer (``/cache/v1``).

    Point one box's cache at another box's ``repro serve`` instance and
    the two share a warm set: reads come from the peer's directory store,
    writes push freshly computed entries to it.  Every operation is one
    short-lived HTTP request (stdlib ``http.client``; no connection
    pooling — the entry payloads dwarf the handshake).

    Status mapping: 404 → entry absent (``None``/False), 2xx → success,
    anything else (and any socket error) → :class:`CacheBackendError`.
    """

    name = "http"

    def __init__(self, base_url: str, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"HTTPCacheBackend needs an http://host:port URL, "
                f"got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    def describe(self) -> str:
        return self.base_url

    def _request(self, method: str, path: str, body: bytes | None = None):
        """One request; returns (status, body bytes) or raises."""
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path, body=body,
                             headers={"Content-Type": "application/octet-stream"}
                             if body is not None else {})
                response = conn.getresponse()
                payload = response.read()
                return response.status, payload
            finally:
                conn.close()
        except (OSError, http.client.HTTPException) as exc:
            # OSError covers refused connections and socket timeouts;
            # HTTPException covers a peer that dies mid-body (IncompleteRead)
            # or speaks garbage.  All of them are transport trouble, never
            # entry damage — surface as CacheBackendError so the cache
            # counts a miss instead of quarantining.
            raise CacheBackendError(
                f"cache peer {self.base_url} unreachable: {exc}"
            ) from exc

    def _get(self, path: str) -> bytes | None:
        status, payload = self._request("GET", path)
        if status == 404:
            return None
        if status != 200:
            raise CacheBackendError(
                f"cache peer {self.base_url} returned {status} for {path}"
            )
        return payload

    # -- core protocol -------------------------------------------------
    def read_json(self, key: str) -> str | None:
        payload = self._get(f"/cache/v1/{key}")
        return payload.decode("utf-8") if payload is not None else None

    def read_npz(self, key: str) -> bytes | None:
        return self._get(f"/cache/v1/{key}/npz")

    def write_entry(self, key: str, json_text: str,
                    npz_bytes: bytes | None) -> None:
        # Same visibility order as the directory store: npz first, the
        # json document last.
        if npz_bytes is not None:
            status, _ = self._request("PUT", f"/cache/v1/{key}/npz", npz_bytes)
            if status not in (200, 201, 204):
                raise CacheBackendError(
                    f"cache peer rejected npz for {key[:12]}: {status}"
                )
        status, _ = self._request("PUT", f"/cache/v1/{key}",
                                  json_text.encode("utf-8"))
        if status not in (200, 201, 204):
            raise CacheBackendError(
                f"cache peer rejected entry {key[:12]}: {status}"
            )

    def contains(self, key: str) -> bool:
        status, _ = self._request("HEAD", f"/cache/v1/{key}")
        if status == 200:
            return True
        if status == 404:
            return False
        raise CacheBackendError(
            f"cache peer {self.base_url} returned {status} for HEAD {key[:12]}"
        )

    def acquire_lock(self, key: str) -> bool:
        status, _ = self._request("POST", f"/cache/v1/{key}/lock")
        if status == 200:
            return True
        if status == 409:
            return False
        raise CacheBackendError(
            f"cache peer {self.base_url} returned {status} acquiring lock"
        )

    def release_lock(self, key: str) -> None:
        try:
            self._request("DELETE", f"/cache/v1/{key}/lock")
        except CacheBackendError:
            pass  # the peer reclaims stale locks on its own

    # -- maintenance ---------------------------------------------------
    def entry_count(self) -> int:
        try:
            payload = self._get("/cache/v1/statz")
        except CacheBackendError:
            return 0
        if payload is None:
            return 0
        import json

        try:
            return int(json.loads(payload).get("entries", 0))
        except (ValueError, AttributeError):
            return 0
