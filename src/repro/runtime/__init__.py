"""Parallel experiment runtime with content-addressed result caching.

The architectural seam every multi-configuration consumer shares:

- :class:`ExperimentSpec` — picklable experiment identity (app, params,
  metric, dtype, seed);
- :class:`ResultCache` — content-addressed JSON+npz store under
  ``.repro_cache/`` (``REPRO_CACHE=off`` to disable), with atomic
  crash-safe writes and quarantine of damaged entries;
- :class:`ExperimentRunner` — fault-tolerant process-pool fan-out with
  chunked dispatch, per-task retries, backend fallback, pool-loss
  recovery, and optional task deadlines (see :class:`RetryPolicy`);
  ``max_workers=1`` is the bit-identical sequential path;
- :class:`SweepManifest` — durable sweep progress for checkpoint/resume;
- :class:`RunnerStats` — wall time, per-task latency, hit rate, speedup,
  and the run's reliability events.

Quick start::

    from repro.core import IHWConfig
    from repro.runtime import ExperimentRunner, ExperimentSpec

    spec = ExperimentSpec.create("hotspot", metric="mae",
                                 rows=64, cols=64, iterations=30)
    runner = ExperimentRunner()  # workers auto-detected, cache from env
    results = runner.sweep(spec, {
        "all": IHWConfig.all_imprecise(),
        "add": IHWConfig.units("add"),
    })
    print(runner.stats.summary())

Failure semantics are documented in ``docs/RELIABILITY.md``.
"""

from .cache import (
    CacheStats,
    ResultCache,
    cache_disabled,
    cache_from_env,
    entry_key,
)
from .manifest import MANIFEST_VERSION, SweepManifest, atomic_write_text
from .policy import RetryPolicy
from .runner import ExperimentRunner, TaskFailedError, default_worker_count
from .spec import APP_RUNNERS, METRIC_NAMES, ExperimentSpec
from .stats import (
    SPEEDUP_CAP,
    RunnerStats,
    TaskTiming,
    group_key,
    record_group,
)
from .storage import (
    CacheBackend,
    CacheBackendError,
    DirectoryBackend,
    HTTPCacheBackend,
)

__all__ = [
    "APP_RUNNERS",
    "CacheBackend",
    "CacheBackendError",
    "CacheStats",
    "DirectoryBackend",
    "ExperimentRunner",
    "ExperimentSpec",
    "HTTPCacheBackend",
    "MANIFEST_VERSION",
    "METRIC_NAMES",
    "ResultCache",
    "RetryPolicy",
    "RunnerStats",
    "SPEEDUP_CAP",
    "SweepManifest",
    "TaskFailedError",
    "TaskTiming",
    "atomic_write_text",
    "cache_disabled",
    "cache_from_env",
    "default_worker_count",
    "entry_key",
    "group_key",
    "record_group",
]
