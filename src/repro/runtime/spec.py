"""Picklable experiment specifications.

A :class:`PowerQualityFramework` is built from closures, which cannot
cross a process boundary.  :class:`ExperimentSpec` is the picklable
equivalent: it *names* an application and a quality metric from small
registries and carries the kernel parameters as plain values, so a worker
process can reconstruct the exact framework, and so the result cache can
derive a stable content address from the experiment identity alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module

__all__ = ["ExperimentSpec", "APP_RUNNERS", "METRIC_NAMES"]

#: Application registry: spec name -> (module, run function attribute).
#: Every entry follows the apps contract ``run(config_or_None, **params)``.
APP_RUNNERS = {
    "hotspot": ("repro.apps.hotspot", "run"),
    "srad": ("repro.apps.srad", "run"),
    "raytracing": ("repro.apps.raytrace", "run"),
    "cp": ("repro.apps.cp", "run"),
    "dct": ("repro.apps.dct", "run"),
    "blackscholes": ("repro.apps.blackscholes", "run"),
}

#: Quality metric registry (resolved lazily from :mod:`repro.quality`).
METRIC_NAMES = ("mae", "mse", "rmse", "psnr", "ssim")

_SCALAR_TYPES = (bool, int, float, str)


def _resolve_metric(name: str):
    from repro import quality

    if name == "ssim":
        # The framework convention for images normalized to [0, 1].
        return lambda out, ref: quality.ssim(out, ref, data_range=1.0)
    return getattr(quality, name)


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity of one application experiment (everything but the config).

    Attributes
    ----------
    app:
        Application name from :data:`APP_RUNNERS`.
    metric:
        Quality metric name from :data:`METRIC_NAMES`.
    params:
        Kernel parameters as a sorted tuple of ``(key, value)`` pairs of
        JSON-able scalars — part of the cache key, passed verbatim to the
        app's ``run``.  Build specs through :meth:`create`, which sorts
        and validates.
    dtype:
        Operand dtype label ("float32" for the GPU studies); part of the
        cache key.
    seed:
        Input-generation seed label; part of the cache key.  Apps with a
        ``seed`` kernel parameter take it through ``params``.
    """

    app: str
    metric: str
    params: tuple = field(default_factory=tuple)
    dtype: str = "float32"
    seed: int = 0

    @classmethod
    def create(cls, app: str, metric: str, dtype: str = "float32",
               seed: int = 0, **params) -> "ExperimentSpec":
        """Validated constructor: ``ExperimentSpec.create("hotspot", "mae", rows=64)``."""
        if app not in APP_RUNNERS:
            raise ValueError(
                f"unknown app {app!r}; expected one of {sorted(APP_RUNNERS)}"
            )
        if metric not in METRIC_NAMES:
            raise ValueError(
                f"unknown metric {metric!r}; expected one of {sorted(METRIC_NAMES)}"
            )
        for key, value in params.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    f"param {key}={value!r} is not a plain scalar; specs must "
                    "be content-addressable (and picklable)"
                )
        return cls(
            app=app,
            metric=metric,
            params=tuple(sorted(params.items())),
            dtype=dtype,
            seed=seed,
        )

    @classmethod
    def from_canonical(cls, doc: dict) -> "ExperimentSpec":
        """Inverse of :meth:`canonical` — validated like :meth:`create`.

        Used wherever a spec must round-trip through JSON (the queue
        journal, wire protocols) and come back as the *same* cache
        identity.
        """
        params = {}
        for pair in doc.get("params", []):
            key, value = pair
            if not isinstance(key, str):
                raise TypeError(f"param name {key!r} is not a string")
            params[key] = value
        return cls.create(
            doc["app"],
            metric=doc["metric"],
            dtype=doc.get("dtype", "float32"),
            seed=doc.get("seed", 0),
            **params,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def params_dict(self) -> dict:
        return dict(self.params)

    def canonical(self) -> dict:
        """JSON-able identity document (combined with the config's by the cache)."""
        return {
            "app": self.app,
            "metric": self.metric,
            "params": [[k, v] for k, v in self.params],
            "dtype": self.dtype,
            "seed": self.seed,
        }

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.app}({params}) metric={self.metric}"

    # ------------------------------------------------------------------
    # Reconstruction (parent process or worker)
    # ------------------------------------------------------------------
    def run_app(self, config):
        """Execute the application (``config=None`` -> precise reference)."""
        module_name, attr = APP_RUNNERS[self.app]
        run = getattr(import_module(module_name), attr)
        return run(config, **self.params_dict())

    def quality_metric(self):
        return _resolve_metric(self.metric)

    def framework(self, **kwargs):
        """The :class:`~repro.framework.PowerQualityFramework` this spec names."""
        from repro.framework import PowerQualityFramework

        return PowerQualityFramework(
            run_app=self.run_app,
            quality_metric=self.quality_metric(),
            spec=self,
            **kwargs,
        )
