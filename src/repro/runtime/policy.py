"""Retry, timeout, and degradation policy of the fault-tolerant runner.

One frozen value object holds every knob the
:class:`~repro.runtime.ExperimentRunner` consults when a task or a
worker pool fails.  The defaults are conservative: a couple of retries
with sub-second backoff, no task deadline (hang detection is opt-in —
a deadline that is too tight turns slow-but-correct work into churn),
and sequential degradation after three consecutive pool losses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import stable_fraction

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner reacts to task and pool failures.

    Attributes
    ----------
    max_retries:
        Retries per task after its first failure (0 = fail fast).  A
        pool-level failure (worker crash) charges one attempt to every
        in-flight task, since the culprit cannot be identified.
    backoff_base / backoff_cap / jitter:
        Retry delay ``min(cap, base * 2**(attempt-1))`` stretched by a
        deterministic per-(task, attempt) jitter in ``[0, jitter]`` —
        reproducible runs, no thundering requeues.
    task_timeout:
        Per-task deadline in seconds; a dispatched chunk's deadline is
        ``task_timeout * len(chunk) + timeout_grace`` measured from
        submission (so it also budgets time spent queued behind other
        chunks).  ``None`` disables hang detection.
    pool_failure_limit:
        Consecutive ``BrokenProcessPool`` losses tolerated before the
        runner degrades to the bit-identical sequential inline path for
        the remaining work.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    task_timeout: float | None = None
    timeout_grace: float = 0.25
    pool_failure_limit: int = 3

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise ValueError("backoff_base/backoff_cap/jitter must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0 or None, got {self.task_timeout}"
            )
        if self.pool_failure_limit < 1:
            raise ValueError(
                f"pool_failure_limit must be >= 1, got {self.pool_failure_limit}"
            )

    def backoff_seconds(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` of ``key``."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff_base * 2 ** max(0, attempt - 1))
        return delay * (1.0 + self.jitter * stable_fraction("backoff", key, attempt))

    def chunk_deadline_seconds(self, n_tasks: int) -> float | None:
        """Deadline budget of one dispatched chunk, or None when disabled."""
        if self.task_timeout is None:
            return None
        return self.task_timeout * max(1, n_tasks) + self.timeout_grace
