"""Content-addressed on-disk cache of power-quality evaluations.

Every cached entry is addressed by a SHA-256 over the *content* of the
experiment: the application name and parameters, the quality metric, the
dtype and seed (from :class:`~repro.runtime.spec.ExperimentSpec`), and the
canonical serialization of the :class:`~repro.core.IHWConfig`
(:meth:`~repro.core.IHWConfig.cache_key`).  Identical (app, config) pairs —
whether issued by the autotuner, a Pareto sweep, or a benchmark — therefore
share one entry.

Layout under the cache root (default ``.repro_cache/``)::

    <key[:2]>/<key>.json   quality, savings, breakdown, output metadata
    <key[:2]>/<key>.npz    the output array (when the output is an ndarray)

Entries carry a schema version and an output checksum; anything that fails
to load, verify, or parse is treated as a miss, deleted, and recomputed —
never served.  Environment knobs:

- ``REPRO_CACHE=off`` (also ``0``/``no``/``false``): disable caching.
- ``REPRO_CACHE_DIR=<path>``: relocate the cache root.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import telemetry

__all__ = ["CacheStats", "ResultCache", "cache_from_env", "cache_disabled"]

SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = ".repro_cache"

_OFF_VALUES = ("off", "0", "no", "false", "disabled")


def cache_disabled() -> bool:
    """Whether the ``REPRO_CACHE`` escape hatch turns caching off."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() in _OFF_VALUES


def cache_from_env(root=None):
    """A :class:`ResultCache` honoring the environment, or None when off."""
    if cache_disabled():
        return None
    root = root or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return ResultCache(root)


@dataclass
class CacheStats:
    """Hit/miss/write accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    invalid: int = 0  # corrupted / stale entries detected and dropped
    uncacheable: int = 0  # outputs the cache declined to serialize

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {**asdict(self), "hit_rate": self.hit_rate}


class ResultCache:
    """Content-addressed store of :class:`~repro.framework.Evaluation` results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    max_entries:
        Optional LRU bound; oldest entries are evicted after a write
        pushes the count above it.
    """

    def __init__(self, root=None, max_entries: int | None = None):
        self.root = Path(root or DEFAULT_CACHE_DIR)
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def key(self, spec, config) -> str:
        """The content address of one (experiment, configuration) result."""
        doc = {
            "schema": SCHEMA_VERSION,
            "experiment": spec.canonical(),
            "config": config.cache_key(),
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def _paths(self, key: str) -> tuple:
        shard = self.root / key[:2]
        return shard / f"{key}.json", shard / f"{key}.npz"

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, spec, config):
        """The cached :class:`Evaluation`, or None (miss / invalid entry)."""
        key = self.key(spec, config)
        json_path, npz_path = self._paths(key)
        with telemetry.span("cache.get", key=key[:12]):
            if not json_path.exists():
                self.stats.misses += 1
                telemetry.counter_inc("repro_cache_requests_total",
                                      outcome="miss")
                return None
            try:
                evaluation = self._load(json_path, npz_path, config)
            except Exception:
                # Corrupted or stale entry: drop it and recompute upstream.
                self._remove(key)
                self.stats.invalid += 1
                self.stats.misses += 1
                telemetry.counter_inc("repro_cache_requests_total",
                                      outcome="invalid")
                return None
            self.stats.hits += 1
            telemetry.counter_inc("repro_cache_requests_total", outcome="hit")
            return evaluation

    def _load(self, json_path: Path, npz_path: Path, config):
        from repro.framework import Evaluation
        from repro.gpu import PowerBreakdown, SavingsReport
        from repro.gpu.simulator import KernelTiming

        doc = json.loads(json_path.read_text())
        if doc["schema"] != SCHEMA_VERSION:
            raise ValueError(f"schema {doc['schema']} != {SCHEMA_VERSION}")
        if doc["config"] != config.canonical():
            raise ValueError("stored config does not match the request")

        out_meta = doc["output"]
        if out_meta["kind"] == "ndarray":
            with np.load(npz_path) as archive:
                output = archive["output"]
            if output.dtype.str != out_meta["dtype"]:
                raise ValueError("output dtype mismatch")
            if list(output.shape) != out_meta["shape"]:
                raise ValueError("output shape mismatch")
            digest = hashlib.sha256(np.ascontiguousarray(output).tobytes())
            if digest.hexdigest() != out_meta["sha256"]:
                raise ValueError("output checksum mismatch")
        else:
            output = out_meta["value"]

        savings = SavingsReport(**doc["savings"])
        breakdown = PowerBreakdown(
            watts=dict(doc["breakdown"]["watts"]),
            timing=KernelTiming(**doc["breakdown"]["timing"]),
            name=doc["breakdown"]["name"],
        )
        return Evaluation(
            config=config,
            quality=float(doc["quality"]),
            savings=savings,
            breakdown=breakdown,
            output=output,
        )

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def put(self, spec, config, evaluation, compute_seconds: float = 0.0) -> bool:
        """Persist one evaluation; returns False for uncacheable outputs."""
        with telemetry.span("cache.put"):
            return self._put(spec, config, evaluation, compute_seconds)

    def _put(self, spec, config, evaluation, compute_seconds: float) -> bool:
        output = evaluation.output
        if isinstance(output, np.ndarray):
            array = np.ascontiguousarray(output)
            out_meta = {
                "kind": "ndarray",
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
            }
        elif isinstance(output, (bool, int, float, str)) or output is None:
            array = None
            out_meta = {"kind": "json", "value": output}
        else:
            self.stats.uncacheable += 1
            telemetry.counter_inc("repro_cache_writes_total",
                                  outcome="uncacheable")
            return False

        key = self.key(spec, config)
        json_path, npz_path = self._paths(key)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "experiment": spec.canonical(),
            "config": config.canonical(),
            "config_describe": config.describe(),
            "quality": float(evaluation.quality),
            "savings": asdict(evaluation.savings),
            "breakdown": {
                "watts": dict(evaluation.breakdown.watts),
                "timing": asdict(evaluation.breakdown.timing),
                "name": evaluation.breakdown.name,
            },
            "output": out_meta,
            "compute_seconds": float(compute_seconds),
        }
        if array is not None:
            np.savez_compressed(npz_path, output=array)
        json_path.write_text(json.dumps(doc, sort_keys=True, indent=1))
        self.stats.writes += 1
        telemetry.counter_inc("repro_cache_writes_total", outcome="stored")
        self._enforce_limit()
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _remove(self, key: str) -> None:
        for path in self._paths(key):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def _enforce_limit(self) -> None:
        if self.max_entries is None:
            return
        entries = sorted(self.root.glob("??/*.json"), key=lambda p: p.stat().st_mtime)
        for stale in entries[: max(0, len(entries) - self.max_entries)]:
            self._remove(stale.stem)
            self.stats.evictions += 1

    def entry_count(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for json_path in list(self.root.glob("??/*.json")):
            self._remove(json_path.stem)
            removed += 1
        return removed
