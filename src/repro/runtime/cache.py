"""Content-addressed cache of power-quality evaluations.

Every cached entry is addressed by a SHA-256 over the *content* of the
experiment: the application name and parameters, the quality metric, the
dtype and seed (from :class:`~repro.runtime.spec.ExperimentSpec`), and the
canonical serialization of the :class:`~repro.core.IHWConfig`
(:meth:`~repro.core.IHWConfig.cache_key`).  Identical (app, config) pairs —
whether issued by the autotuner, a Pareto sweep, a benchmark, or a sweep
service request — therefore share one entry.

:class:`ResultCache` owns the entry *semantics*: addressing,
serialization, checksum validation, and quarantine policy.  The *bytes*
live behind a :class:`~repro.runtime.storage.CacheBackend`:

- :class:`~repro.runtime.storage.DirectoryBackend` (default) — the local
  ``.repro_cache/`` tree, layout unchanged since PR 1 (``<key[:2]>/
  <key>.json`` + ``.npz``, ``quarantine/``, ``manifests/``), so existing
  cache trees stay valid byte for byte;
- :class:`~repro.runtime.storage.HTTPCacheBackend` — a sweep-service peer
  acting as a shared store (see ``docs/SERVICE.md``).

Entries carry a schema version and an output checksum; anything that
fails to load, verify, or parse is treated as a miss, **quarantined**
(moved aside for post-mortem, never deleted silently), and recomputed —
never served.  Backend *transport* failures are counted and treated as
plain misses without quarantine.  Environment knobs:

- ``REPRO_CACHE=off`` (also ``0``/``no``/``false``): disable caching.
- ``REPRO_CACHE_DIR=<path>``: relocate the cache root.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import telemetry

from .storage import (
    QUARANTINE_DIRNAME,
    STALE_LOCK_SECONDS,
    CacheBackend,
    CacheBackendError,
    DirectoryBackend,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "cache_from_env",
    "cache_disabled",
    "entry_key",
    "QUARANTINE_DIRNAME",
    "STALE_LOCK_SECONDS",
]

SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = ".repro_cache"


def entry_key(spec, config) -> str:
    """The content address of one (experiment, configuration) result.

    Module-level so clients that never touch a store — the fleet client
    places work by cache key — can compute addresses identical to the
    server's without instantiating a :class:`ResultCache`.
    """
    doc = {
        "schema": SCHEMA_VERSION,
        "experiment": spec.canonical(),
        "config": config.cache_key(),
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()

_OFF_VALUES = ("off", "0", "no", "false", "disabled")


def cache_disabled() -> bool:
    """Whether the ``REPRO_CACHE`` escape hatch turns caching off."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() in _OFF_VALUES


def cache_from_env(root=None):
    """A :class:`ResultCache` honoring the environment, or None when off."""
    if cache_disabled():
        return None
    root = root or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return ResultCache(root)


@dataclass
class CacheStats:
    """Hit/miss/write accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    invalid: int = 0  # corrupted / stale entries detected and dropped
    uncacheable: int = 0  # outputs the cache declined to serialize
    quarantined: int = 0  # invalid entries moved aside for post-mortem
    lock_skips: int = 0  # writes skipped because another writer held the lock
    stale_cleaned: int = 0  # stale locks / orphaned temp files removed
    backend_errors: int = 0  # transport failures (treated as misses)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {**asdict(self), "hit_rate": self.hit_rate}


class ResultCache:
    """Content-addressed store of :class:`~repro.framework.Evaluation` results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Ignored when an
        explicit ``backend`` is given.
    max_entries:
        Optional LRU bound; oldest entries are evicted after a write
        pushes the count above it (directory backend only).
    backend:
        A :class:`~repro.runtime.storage.CacheBackend` owning the bytes;
        defaults to a :class:`DirectoryBackend` at ``root``.
    """

    def __init__(self, root=None, max_entries: int | None = None,
                 backend: CacheBackend | None = None):
        if backend is None:
            backend = DirectoryBackend(Path(root or DEFAULT_CACHE_DIR))
        self.backend = backend
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()

    @property
    def root(self):
        """The directory root, or the backend's description (remote URL)."""
        local = self.backend.local_root
        return local if local is not None else self.backend.describe()

    @property
    def local_root(self) -> Path | None:
        """Directory root when the store is local, else None.

        Sweep manifests (checkpoint/resume) and stale-artifact cleanup
        only exist for local stores; the runner gates on this.
        """
        return self.backend.local_root

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def key(self, spec, config) -> str:
        """The content address of one (experiment, configuration) result."""
        return entry_key(spec, config)

    def entry_paths(self, spec, config) -> tuple:
        """The (json, npz) paths addressing one result (tooling/tests).

        Only meaningful for directory-backed caches.
        """
        local = self.backend.local_root
        if local is None:
            raise ValueError(
                f"cache backend {self.backend.name!r} has no local paths"
            )
        return self.backend.paths(self.key(spec, config))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, spec, config):
        """The cached :class:`Evaluation`, or None (miss / invalid entry)."""
        key = self.key(spec, config)
        with telemetry.span("cache.get", key=key[:12]):
            try:
                json_text = self.backend.read_json(key)
            except CacheBackendError:
                return self._backend_miss()
            if json_text is None:
                self.stats.misses += 1
                telemetry.counter_inc("repro_cache_requests_total",
                                      outcome="miss")
                return None
            try:
                evaluation = self._load(json_text, key, config)
            except CacheBackendError:
                return self._backend_miss()
            except Exception:
                # Corrupted or stale entry: quarantine it (not a silent
                # delete — the damaged bytes stay inspectable) and let the
                # caller recompute.
                self._quarantine(key)
                self.stats.invalid += 1
                self.stats.misses += 1
                telemetry.counter_inc("repro_cache_requests_total",
                                      outcome="invalid")
                return None
            self.stats.hits += 1
            telemetry.counter_inc("repro_cache_requests_total", outcome="hit")
            return evaluation

    def document(self, spec, config) -> dict | None:
        """The parsed, config-validated entry document, or None.

        The cheap read path of the sweep service: the document carries
        quality, savings, breakdown, and output *metadata* (dtype, shape,
        checksum) without deserializing the npz payload.  Damage found at
        this level quarantines the entry just like :meth:`get`.
        """
        key = self.key(spec, config)
        try:
            json_text = self.backend.read_json(key)
        except CacheBackendError:
            self._backend_miss()
            return None
        if json_text is None:
            self.stats.misses += 1
            telemetry.counter_inc("repro_cache_requests_total",
                                  outcome="miss")
            return None
        try:
            doc = json.loads(json_text)
            if doc["schema"] != SCHEMA_VERSION:
                raise ValueError(f"schema {doc['schema']} != {SCHEMA_VERSION}")
            if doc["config"] != config.canonical():
                raise ValueError("stored config does not match the request")
        except Exception:
            self._quarantine(key)
            self.stats.invalid += 1
            self.stats.misses += 1
            telemetry.counter_inc("repro_cache_requests_total",
                                  outcome="invalid")
            return None
        self.stats.hits += 1
        telemetry.counter_inc("repro_cache_requests_total", outcome="hit")
        return doc

    def _backend_miss(self):
        self.stats.backend_errors += 1
        self.stats.misses += 1
        telemetry.counter_inc("repro_cache_requests_total",
                              outcome="backend-error")
        return None

    def _load(self, json_text: str, key: str, config):
        from repro.framework import Evaluation
        from repro.gpu import PowerBreakdown, SavingsReport
        from repro.gpu.simulator import KernelTiming

        doc = json.loads(json_text)
        if doc["schema"] != SCHEMA_VERSION:
            raise ValueError(f"schema {doc['schema']} != {SCHEMA_VERSION}")
        if doc["config"] != config.canonical():
            raise ValueError("stored config does not match the request")

        out_meta = doc["output"]
        if out_meta["kind"] == "ndarray":
            npz_bytes = self.backend.read_npz(key)
            if npz_bytes is None:
                raise ValueError("entry document present but npz payload missing")
            with np.load(io.BytesIO(npz_bytes)) as archive:
                output = archive["output"]
            if output.dtype.str != out_meta["dtype"]:
                raise ValueError("output dtype mismatch")
            if list(output.shape) != out_meta["shape"]:
                raise ValueError("output shape mismatch")
            digest = hashlib.sha256(np.ascontiguousarray(output).tobytes())
            if digest.hexdigest() != out_meta["sha256"]:
                raise ValueError("output checksum mismatch")
        else:
            output = out_meta["value"]

        savings = SavingsReport(**doc["savings"])
        breakdown = PowerBreakdown(
            watts=dict(doc["breakdown"]["watts"]),
            timing=KernelTiming(**doc["breakdown"]["timing"]),
            name=doc["breakdown"]["name"],
        )
        return Evaluation(
            config=config,
            quality=float(doc["quality"]),
            savings=savings,
            breakdown=breakdown,
            output=output,
        )

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def build_document(self, spec, config, evaluation,
                       compute_seconds: float = 0.0) -> dict | None:
        """The entry document :meth:`put` would persist (None: uncacheable).

        Shared by the write path and the sweep service, which answers
        requests with exactly the document a later warm read would serve.
        """
        out_meta, _array = self._serialize_output(evaluation.output)
        if out_meta is None:
            return None
        key = self.key(spec, config)
        return self._document(key, spec, config, evaluation, out_meta,
                              compute_seconds)

    def _serialize_output(self, output):
        if isinstance(output, np.ndarray):
            array = np.ascontiguousarray(output)
            return {
                "kind": "ndarray",
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
            }, array
        if isinstance(output, (bool, int, float, str)) or output is None:
            return {"kind": "json", "value": output}, None
        return None, None

    def _document(self, key, spec, config, evaluation, out_meta,
                  compute_seconds) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "key": key,
            "experiment": spec.canonical(),
            "config": config.canonical(),
            "config_describe": config.describe(),
            "quality": float(evaluation.quality),
            "savings": asdict(evaluation.savings),
            "breakdown": {
                "watts": dict(evaluation.breakdown.watts),
                "timing": asdict(evaluation.breakdown.timing),
                "name": evaluation.breakdown.name,
            },
            "output": out_meta,
            "compute_seconds": float(compute_seconds),
        }

    def put(self, spec, config, evaluation, compute_seconds: float = 0.0) -> bool:
        """Persist one evaluation; returns False for uncacheable outputs."""
        with telemetry.span("cache.put"):
            return self._put(spec, config, evaluation, compute_seconds)

    def _put(self, spec, config, evaluation, compute_seconds: float) -> bool:
        out_meta, array = self._serialize_output(evaluation.output)
        if out_meta is None:
            self.stats.uncacheable += 1
            telemetry.counter_inc("repro_cache_writes_total",
                                  outcome="uncacheable")
            return False

        key = self.key(spec, config)
        doc = self._document(key, spec, config, evaluation, out_meta,
                             compute_seconds)
        npz_bytes = None
        if array is not None:
            buffer = io.BytesIO()
            np.savez_compressed(buffer, output=array)
            npz_bytes = buffer.getvalue()
        json_text = json.dumps(doc, sort_keys=True, indent=1)

        try:
            reclaimed_before = self.backend.stale_locks_reclaimed
            acquired = self.backend.acquire_lock(key)
            self.stats.stale_cleaned += (
                self.backend.stale_locks_reclaimed - reclaimed_before
            )
            if not acquired:
                # A concurrent writer owns this entry; its bytes will be
                # identical (content-addressed), so losing the race is free.
                self.stats.lock_skips += 1
                return False
            try:
                self.backend.write_entry(key, json_text, npz_bytes)
            finally:
                self.backend.release_lock(key)
        except CacheBackendError:
            self.stats.backend_errors += 1
            telemetry.counter_inc("repro_cache_writes_total",
                                  outcome="backend-error")
            return False
        self.stats.writes += 1
        telemetry.counter_inc("repro_cache_writes_total", outcome="stored")
        self._enforce_limit()
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _quarantine(self, key: str) -> None:
        if self.backend.quarantine(key):
            self.stats.quarantined += 1
        telemetry.counter_inc("repro_cache_quarantined_total")

    def quarantine_count(self) -> int:
        backend = self.backend
        counter = getattr(backend, "quarantine_count", None)
        return counter() if counter is not None else 0

    def cleanup_stale(self, max_age_seconds: float = STALE_LOCK_SECONDS) -> int:
        """Remove stale locks and orphaned temp files; returns the count.

        Called by the runner at sweep start and available as maintenance
        API; a no-op for remote backends (the peer cleans its own store).
        """
        removed = self.backend.cleanup_stale(max_age_seconds)
        self.stats.stale_cleaned += removed
        return removed

    def _enforce_limit(self) -> None:
        if self.max_entries is None:
            return
        self.stats.evictions += self.backend.enforce_limit(self.max_entries)

    def entry_count(self) -> int:
        return self.backend.entry_count()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        return self.backend.clear()
