"""Content-addressed on-disk cache of power-quality evaluations.

Every cached entry is addressed by a SHA-256 over the *content* of the
experiment: the application name and parameters, the quality metric, the
dtype and seed (from :class:`~repro.runtime.spec.ExperimentSpec`), and the
canonical serialization of the :class:`~repro.core.IHWConfig`
(:meth:`~repro.core.IHWConfig.cache_key`).  Identical (app, config) pairs —
whether issued by the autotuner, a Pareto sweep, or a benchmark — therefore
share one entry.

Layout under the cache root (default ``.repro_cache/``)::

    <key[:2]>/<key>.json   quality, savings, breakdown, output metadata
    <key[:2]>/<key>.npz    the output array (when the output is an ndarray)
    <key[:2]>/<key>.lock   advisory in-flight write marker (transient)
    quarantine/            damaged entries moved aside, never served
    manifests/<id>.json    sweep progress records (checkpoint/resume)

Entries carry a schema version and an output checksum; anything that fails
to load, verify, or parse is treated as a miss, **quarantined** (moved to
``<root>/quarantine/`` for post-mortem, never deleted silently), and
recomputed — never served.  Writes are crash-safe: every file lands via
tempfile + ``os.replace``, under a per-key advisory ``.lock`` whose stale
remains (from a crashed writer) are cleaned up after
:data:`STALE_LOCK_SECONDS`.  Environment knobs:

- ``REPRO_CACHE=off`` (also ``0``/``no``/``false``): disable caching.
- ``REPRO_CACHE_DIR=<path>``: relocate the cache root.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import telemetry

__all__ = ["CacheStats", "ResultCache", "cache_from_env", "cache_disabled"]

SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = ".repro_cache"
QUARANTINE_DIRNAME = "quarantine"

#: Age after which an advisory write lock (or orphaned temp file) left by
#: a crashed writer is considered stale and removed.
STALE_LOCK_SECONDS = 300.0

_OFF_VALUES = ("off", "0", "no", "false", "disabled")


def cache_disabled() -> bool:
    """Whether the ``REPRO_CACHE`` escape hatch turns caching off."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() in _OFF_VALUES


def cache_from_env(root=None):
    """A :class:`ResultCache` honoring the environment, or None when off."""
    if cache_disabled():
        return None
    root = root or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return ResultCache(root)


@dataclass
class CacheStats:
    """Hit/miss/write accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    invalid: int = 0  # corrupted / stale entries detected and dropped
    uncacheable: int = 0  # outputs the cache declined to serialize
    quarantined: int = 0  # invalid entries moved aside for post-mortem
    lock_skips: int = 0  # writes skipped because another writer held the lock
    stale_cleaned: int = 0  # stale locks / orphaned temp files removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {**asdict(self), "hit_rate": self.hit_rate}


class ResultCache:
    """Content-addressed store of :class:`~repro.framework.Evaluation` results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    max_entries:
        Optional LRU bound; oldest entries are evicted after a write
        pushes the count above it.
    """

    def __init__(self, root=None, max_entries: int | None = None):
        self.root = Path(root or DEFAULT_CACHE_DIR)
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def key(self, spec, config) -> str:
        """The content address of one (experiment, configuration) result."""
        doc = {
            "schema": SCHEMA_VERSION,
            "experiment": spec.canonical(),
            "config": config.cache_key(),
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def _paths(self, key: str) -> tuple:
        shard = self.root / key[:2]
        return shard / f"{key}.json", shard / f"{key}.npz"

    def _lock_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.lock"

    def entry_paths(self, spec, config) -> tuple:
        """The (json, npz) paths addressing one result (tooling/tests)."""
        return self._paths(self.key(spec, config))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, spec, config):
        """The cached :class:`Evaluation`, or None (miss / invalid entry)."""
        key = self.key(spec, config)
        json_path, npz_path = self._paths(key)
        with telemetry.span("cache.get", key=key[:12]):
            if not json_path.exists():
                self.stats.misses += 1
                telemetry.counter_inc("repro_cache_requests_total",
                                      outcome="miss")
                return None
            try:
                evaluation = self._load(json_path, npz_path, config)
            except Exception:
                # Corrupted or stale entry: quarantine it (not a silent
                # delete — the damaged bytes stay inspectable) and let the
                # caller recompute.
                self._quarantine(key)
                self.stats.invalid += 1
                self.stats.misses += 1
                telemetry.counter_inc("repro_cache_requests_total",
                                      outcome="invalid")
                telemetry.counter_inc("repro_cache_quarantined_total")
                return None
            self.stats.hits += 1
            telemetry.counter_inc("repro_cache_requests_total", outcome="hit")
            return evaluation

    def _load(self, json_path: Path, npz_path: Path, config):
        from repro.framework import Evaluation
        from repro.gpu import PowerBreakdown, SavingsReport
        from repro.gpu.simulator import KernelTiming

        doc = json.loads(json_path.read_text())
        if doc["schema"] != SCHEMA_VERSION:
            raise ValueError(f"schema {doc['schema']} != {SCHEMA_VERSION}")
        if doc["config"] != config.canonical():
            raise ValueError("stored config does not match the request")

        out_meta = doc["output"]
        if out_meta["kind"] == "ndarray":
            with np.load(npz_path) as archive:
                output = archive["output"]
            if output.dtype.str != out_meta["dtype"]:
                raise ValueError("output dtype mismatch")
            if list(output.shape) != out_meta["shape"]:
                raise ValueError("output shape mismatch")
            digest = hashlib.sha256(np.ascontiguousarray(output).tobytes())
            if digest.hexdigest() != out_meta["sha256"]:
                raise ValueError("output checksum mismatch")
        else:
            output = out_meta["value"]

        savings = SavingsReport(**doc["savings"])
        breakdown = PowerBreakdown(
            watts=dict(doc["breakdown"]["watts"]),
            timing=KernelTiming(**doc["breakdown"]["timing"]),
            name=doc["breakdown"]["name"],
        )
        return Evaluation(
            config=config,
            quality=float(doc["quality"]),
            savings=savings,
            breakdown=breakdown,
            output=output,
        )

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def put(self, spec, config, evaluation, compute_seconds: float = 0.0) -> bool:
        """Persist one evaluation; returns False for uncacheable outputs."""
        with telemetry.span("cache.put"):
            return self._put(spec, config, evaluation, compute_seconds)

    def _put(self, spec, config, evaluation, compute_seconds: float) -> bool:
        output = evaluation.output
        if isinstance(output, np.ndarray):
            array = np.ascontiguousarray(output)
            out_meta = {
                "kind": "ndarray",
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
            }
        elif isinstance(output, (bool, int, float, str)) or output is None:
            array = None
            out_meta = {"kind": "json", "value": output}
        else:
            self.stats.uncacheable += 1
            telemetry.counter_inc("repro_cache_writes_total",
                                  outcome="uncacheable")
            return False

        key = self.key(spec, config)
        json_path, npz_path = self._paths(key)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        if not self._acquire_lock(key):
            # A concurrent writer owns this entry; its bytes will be
            # identical (content-addressed), so losing the race is free.
            self.stats.lock_skips += 1
            return False
        try:
            return self._write_entry(
                key, json_path, npz_path, spec, config, evaluation,
                array, out_meta, compute_seconds,
            )
        finally:
            self._release_lock(key)

    def _write_entry(self, key, json_path, npz_path, spec, config,
                     evaluation, array, out_meta, compute_seconds) -> bool:
        doc = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "experiment": spec.canonical(),
            "config": config.canonical(),
            "config_describe": config.describe(),
            "quality": float(evaluation.quality),
            "savings": asdict(evaluation.savings),
            "breakdown": {
                "watts": dict(evaluation.breakdown.watts),
                "timing": asdict(evaluation.breakdown.timing),
                "name": evaluation.breakdown.name,
            },
            "output": out_meta,
            "compute_seconds": float(compute_seconds),
        }
        # Atomic landing: each file is fully written to a sibling temp
        # path and renamed into place, npz before json (the json's
        # presence is what makes the entry visible to readers), so a
        # crash mid-write can never leave a half-entry that parses.
        if array is not None:
            tmp_npz = npz_path.with_name(f"{key}.tmp.npz")
            np.savez_compressed(tmp_npz, output=array)
            os.replace(tmp_npz, npz_path)
        tmp_json = json_path.with_name(f"{key}.json.tmp")
        tmp_json.write_text(json.dumps(doc, sort_keys=True, indent=1))
        os.replace(tmp_json, json_path)
        self.stats.writes += 1
        telemetry.counter_inc("repro_cache_writes_total", outcome="stored")
        self._enforce_limit()
        return True

    # ------------------------------------------------------------------
    # Advisory write locks
    # ------------------------------------------------------------------
    def _acquire_lock(self, key: str) -> bool:
        """Create the per-key advisory lock; False when held by another.

        The lock only signals an in-flight write to concurrent writers
        (correctness comes from the atomic renames); a lock older than
        :data:`STALE_LOCK_SECONDS` belongs to a crashed writer and is
        reclaimed.
        """
        lock_path = self._lock_path(key)
        for _ in range(2):  # second pass after reclaiming a stale lock
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    continue  # lock vanished between open and stat: retry
                if age <= STALE_LOCK_SECONDS:
                    return False
                lock_path.unlink(missing_ok=True)
                self.stats.stale_cleaned += 1
                continue
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            os.close(fd)
            return True
        return False

    def _release_lock(self, key: str) -> None:
        self._lock_path(key).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _remove(self, key: str) -> None:
        for path in self._paths(key):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def _quarantine(self, key: str) -> None:
        """Move a damaged entry's files aside instead of deleting them."""
        quarantine_dir = self.root / QUARANTINE_DIRNAME
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        moved = False
        for path in self._paths(key):
            if not path.exists():
                continue
            try:
                os.replace(path, quarantine_dir / path.name)
                moved = True
            except OSError:
                path.unlink(missing_ok=True)  # cross-device: drop instead
        if moved:
            self.stats.quarantined += 1

    def quarantine_count(self) -> int:
        return sum(
            1 for _ in (self.root / QUARANTINE_DIRNAME).glob("*.json")
        )

    def cleanup_stale(self, max_age_seconds: float = STALE_LOCK_SECONDS) -> int:
        """Remove stale locks and orphaned temp files; returns the count.

        Both are the remains of a writer that died mid-``put``; neither
        is ever read, so removal is always safe.  Called by the runner at
        sweep start and available as maintenance API.
        """
        removed = 0
        now = time.time()
        for pattern in ("??/*.lock", "??/*.tmp", "??/*.tmp.npz",
                        "manifests/*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    if now - path.stat().st_mtime > max_age_seconds:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue  # concurrent cleanup or vanished file
        self.stats.stale_cleaned += removed
        return removed

    def _enforce_limit(self) -> None:
        if self.max_entries is None:
            return
        entries = sorted(self.root.glob("??/*.json"), key=lambda p: p.stat().st_mtime)
        for stale in entries[: max(0, len(entries) - self.max_entries)]:
            self._remove(stale.stem)
            self.stats.evictions += 1

    def entry_count(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for json_path in list(self.root.glob("??/*.json")):
            self._remove(json_path.stem)
            removed += 1
        return removed
