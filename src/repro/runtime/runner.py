"""Parallel, cached experiment execution.

:class:`ExperimentRunner` is the one execution path shared by every
multi-configuration consumer (framework sweeps, autotuner probes, Pareto
studies, benchmarks, the CLI):

- each requested configuration is first looked up in the content-addressed
  :class:`~repro.runtime.cache.ResultCache` (when enabled);
- the misses fan out over a ``concurrent.futures.ProcessPoolExecutor`` in
  chunks, each worker memoizing one framework (and thus one precise
  reference run) per :class:`~repro.runtime.spec.ExperimentSpec`;
- ``max_workers=1`` degrades to a fully in-process sequential path —
  no pool, no pickling — so results stay bit-identical and debuggable;
- per-task compute time is captured either way and aggregated into a
  :class:`~repro.runtime.stats.RunnerStats`.

Results are deterministic and mode-independent: each evaluation runs the
same seeded kernel through the same framework code whether inline, in a
worker, or restored from cache.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro import telemetry

from .cache import ResultCache, cache_from_env
from .stats import RunnerStats, TaskTiming

__all__ = ["ExperimentRunner", "default_worker_count"]


def default_worker_count() -> int:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Worker-side execution (module-level: must be picklable)
# ----------------------------------------------------------------------
# repro-lint: disable=fork-safety -- per-process memo, rebuilt from the spec on first use
_WORKER_FRAMEWORKS: dict = {}


def _evaluate_spec(spec, config):
    """One evaluation with per-process framework (and reference) reuse."""
    framework = _WORKER_FRAMEWORKS.get(spec)
    if framework is None:
        framework = spec.framework()
        _WORKER_FRAMEWORKS[spec] = framework
    start = time.perf_counter()
    evaluation = framework.evaluate(config)
    return evaluation, time.perf_counter() - start


def _evaluate_chunk(spec, named_configs):
    """Worker task: evaluate a chunk, shipping telemetry back with it.

    Workers inherit ``REPRO_TELEMETRY`` from the environment; whatever
    spans and metrics their instrumentation buffered travel home as the
    second element for the parent to absorb.
    """
    rows = [
        (name, *_evaluate_spec(spec, config)) for name, config in named_configs
    ]
    return rows, telemetry.drain_worker()


def _run_chunk(func, argument_tuples):
    out = []
    for arguments in argument_tuples:
        start = time.perf_counter()
        result = func(*arguments)
        out.append((result, time.perf_counter() - start))
    return out


def _call_chunk(func, argument_tuples):
    return _run_chunk(func, argument_tuples), telemetry.drain_worker()


class ExperimentRunner:
    """Fan configuration evaluations out over processes, through a cache.

    Parameters
    ----------
    max_workers:
        Process count; default auto-detected from the machine.  ``1``
        selects the in-process sequential path.
    cache:
        ``"auto"`` (default): honor ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``;
        ``None``/``False``: caching off; or a :class:`ResultCache`.
    chunk_size:
        Configurations per dispatched task; default balances ~2 chunks
        per worker so stragglers overlap.
    """

    def __init__(self, max_workers: int | None = None, cache="auto",
                 chunk_size: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers or default_worker_count()
        if cache == "auto":
            self.cache = cache_from_env()
        elif cache in (None, False):
            self.cache = None
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.chunk_size = chunk_size
        self.stats = RunnerStats(max_workers=self.max_workers)
        self._frameworks: dict = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, spec, config):
        """One cached evaluation, always in-process (autotuner probes)."""
        cached = self.cache.get(spec, config) if self.cache else None
        if cached is not None:
            return cached
        evaluation, seconds = self._evaluate_inline(spec, config)
        if self.cache:
            self.cache.put(spec, config, evaluation, seconds)
        return evaluation

    def sweep(self, spec, configs) -> dict:
        """Evaluate ``{name: IHWConfig}`` and return ``{name: Evaluation}``.

        Insertion order is preserved; ``self.stats`` afterwards describes
        this sweep.
        """
        wall_start = time.perf_counter()
        tasks: list = []
        results: dict = {}
        misses: list = []
        with telemetry.span(
            "sweep", app=spec.app, metric=spec.metric, configs=len(configs)
        ) as sweep_span:
            for name, config in configs.items():
                cached = self.cache.get(spec, config) if self.cache else None
                if cached is not None:
                    results[name] = cached
                    tasks.append(TaskTiming(name, 0.0, cached=True))
                else:
                    misses.append((name, config))

            chunk_size = self._chunk_size_for(len(misses))
            if misses and self.max_workers == 1:
                for name, config in misses:
                    evaluation, seconds = self._evaluate_inline(spec, config)
                    results[name] = evaluation
                    tasks.append(TaskTiming(name, seconds))
                    if self.cache:
                        self.cache.put(spec, config, evaluation, seconds)
            elif misses:
                miss_configs = dict(misses)
                chunks = _chunked(misses, chunk_size)
                workers = min(self.max_workers, len(chunks))
                sweep_id = sweep_span["id"] if sweep_span else None
                # Reset at worker startup: forked workers inherit the
                # parent's buffered telemetry, which would ship back and
                # double-count on absorb.
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=telemetry.reset
                ) as pool:
                    futures = [
                        pool.submit(_evaluate_chunk, spec, chunk)
                        for chunk in chunks
                    ]
                    for future in futures:
                        rows, worker_telemetry = future.result()
                        telemetry.absorb_worker(worker_telemetry,
                                                parent_id=sweep_id)
                        for name, evaluation, seconds in rows:
                            results[name] = evaluation
                            tasks.append(TaskTiming(name, seconds))
                            if self.cache:
                                self.cache.put(spec, miss_configs[name],
                                               evaluation, seconds)

        ordered = {name: results[name] for name in configs}
        self.stats = RunnerStats(
            wall_seconds=time.perf_counter() - wall_start,
            max_workers=self.max_workers,
            chunk_size=chunk_size,
            tasks=tasks,
        )
        telemetry.record_runner_stats(self.stats, app=spec.app)
        return ordered

    def map(self, func, argument_tuples, labels=None) -> list:
        """Generic fan-out: ``[func(*args) for args in argument_tuples]``.

        ``func`` must be a module-level (picklable) callable.  Used by the
        characterization sweeps; results keep input order and the run is
        recorded in ``self.stats`` (no caching at this layer).
        """
        argument_tuples = list(argument_tuples)
        labels = list(labels) if labels is not None else [
            f"task{i}" for i in range(len(argument_tuples))
        ]
        if len(labels) != len(argument_tuples):
            raise ValueError("labels and argument_tuples lengths differ")
        wall_start = time.perf_counter()
        chunk_size = self._chunk_size_for(len(argument_tuples))
        pairs: list = []
        with telemetry.span(
            "map", func=getattr(func, "__name__", str(func)),
            tasks=len(argument_tuples),
        ) as map_span:
            if not argument_tuples:
                pass
            elif self.max_workers == 1:
                pairs = _run_chunk(func, argument_tuples)
            else:
                map_id = map_span["id"] if map_span else None
                chunks = _chunked(argument_tuples, chunk_size)
                workers = min(self.max_workers, len(chunks))
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=telemetry.reset
                ) as pool:
                    futures = [
                        pool.submit(_call_chunk, func, chunk) for chunk in chunks
                    ]
                    for future in futures:
                        chunk_pairs, worker_telemetry = future.result()
                        telemetry.absorb_worker(worker_telemetry,
                                                parent_id=map_id)
                        pairs.extend(chunk_pairs)
        self.stats = RunnerStats(
            wall_seconds=time.perf_counter() - wall_start,
            max_workers=self.max_workers,
            chunk_size=chunk_size,
            tasks=[
                TaskTiming(label, seconds)
                for label, (_, seconds) in zip(labels, pairs)
            ],
        )
        return [result for result, _ in pairs]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate_inline(self, spec, config):
        framework = self._frameworks.get(spec)
        if framework is None:
            framework = spec.framework()
            self._frameworks[spec] = framework
        start = time.perf_counter()
        evaluation = framework.evaluate(config)
        return evaluation, time.perf_counter() - start

    def _chunk_size_for(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        if n_tasks <= 0 or self.max_workers == 1:
            return 1
        return max(1, math.ceil(n_tasks / (self.max_workers * 2)))


def _chunked(items, size: int) -> list:
    return [items[i : i + size] for i in range(0, len(items), size)]
