"""Parallel, cached, fault-tolerant experiment execution.

:class:`ExperimentRunner` is the one execution path shared by every
multi-configuration consumer (framework sweeps, autotuner probes, Pareto
studies, benchmarks, the CLI):

- each requested configuration is first looked up in the content-addressed
  :class:`~repro.runtime.cache.ResultCache` (when enabled);
- the misses fan out over a ``concurrent.futures.ProcessPoolExecutor`` in
  chunks, each worker memoizing a bounded LRU of frameworks (and thus one
  precise reference run) per :class:`~repro.runtime.spec.ExperimentSpec`;
- ``max_workers=1`` degrades to a fully in-process sequential path —
  no pool, no pickling — so results stay bit-identical and debuggable;
- per-task compute time is captured either way and aggregated into a
  :class:`~repro.runtime.stats.RunnerStats`.

Failures are bounded and recoverable (see ``docs/RELIABILITY.md``),
governed by a :class:`~repro.runtime.policy.RetryPolicy`:

- a task that raises is retried with exponential backoff + deterministic
  jitter; a failing task whose config selects a non-``reference`` compute
  backend first **falls back to the reference backend** (bit-identical by
  the parity contract) and is counted loudly;
- a lost pool (``BrokenProcessPool`` — worker crash, OOM kill) is rebuilt
  and only the unfinished work is requeued; after
  ``policy.pool_failure_limit`` consecutive losses the runner **degrades
  to the sequential inline path**, which produces the same bits;
- with ``policy.task_timeout`` set, a dispatched chunk that blows its
  deadline has its workers terminated and its tasks retried — a hung
  worker cannot stall a sweep forever;
- completed sweep results are checkpointed through the cache plus a
  :class:`~repro.runtime.manifest.SweepManifest`, so an interrupted sweep
  resumed with ``resume=True`` recomputes none of its finished configs.

Deterministic fault injection (``REPRO_FAULTS``, :mod:`repro.faults`)
exercises every one of these paths in ``tests/test_faults.py``.

Results are deterministic and mode-independent: each evaluation runs the
same seeded kernel through the same framework code whether inline, in a
worker, restored from cache, or recomputed on a retry.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro import faults, telemetry

from .cache import ResultCache, cache_from_env
from .manifest import SweepManifest
from .policy import RetryPolicy
from .stats import RunnerStats, TaskTiming, group_key, record_group

__all__ = ["ExperimentRunner", "TaskFailedError", "default_worker_count"]


def default_worker_count() -> int:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget; carries the last failure."""

    def __init__(self, key: str, attempts: int, error: str):
        super().__init__(
            f"task {key!r} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {error}"
        )
        self.key = key
        self.attempts = attempts
        self.error = error


class _PendingTask:
    """One unit of work moving through the fault-tolerant engine."""

    __slots__ = ("key", "label", "payload", "attempt", "fallback")

    def __init__(self, key, label: str, payload):
        self.key = key  # unique routing key (config name / map index)
        self.label = label  # display + fault-injection key
        self.payload = payload  # IHWConfig for sweeps, argument tuple for map
        self.attempt = 0  # failures so far
        self.fallback = False  # switched to the reference backend


# ----------------------------------------------------------------------
# Worker-side execution (module-level: must be picklable)
# ----------------------------------------------------------------------
#: Cap on per-process framework memos: a long-lived worker fed many
#: distinct specs must not grow without bound (each memo pins a precise
#: reference run, which can hold a large output array).
_FRAMEWORK_MEMO_CAP = 8

# repro-lint: disable=fork-safety,worker-state -- per-process memo, rebuilt from the spec on first use
_WORKER_FRAMEWORKS: dict = {}


def _memo_framework(memo: dict, spec):
    """Fetch/build the framework for ``spec`` with LRU-bounded memoization."""
    framework = memo.pop(spec, None)
    if framework is None:
        framework = spec.framework()
    memo[spec] = framework  # (re)insert last: dict order is the LRU order
    while len(memo) > _FRAMEWORK_MEMO_CAP:
        memo.pop(next(iter(memo)))
    return framework


def _evaluate_spec(spec, config):
    """One evaluation with per-process framework (and reference) reuse."""
    framework = _memo_framework(_WORKER_FRAMEWORKS, spec)
    start = time.perf_counter()
    evaluation = framework.evaluate(config)
    return evaluation, time.perf_counter() - start


def _error_summary(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _worker_init() -> None:
    """Pool-worker initializer: fresh telemetry, single-threaded backends.

    The pin keeps a parallel backend inside a pool worker from multiplying
    the pool's process parallelism into ``workers x threads``
    oversubscription: with the pin, a sweep over N workers uses N cores
    total no matter which backend the configurations select.  An explicit
    ``backend_threads`` still wins over the pin, by design.
    """
    telemetry.reset()
    from repro.core.backends import threads as backend_threads

    backend_threads.pin_worker_threads()


def _reclaim_scratch() -> int:
    """Record and release backend scratch pools between tasks.

    A batched backend call grows its :class:`ScratchPool` to the batch's
    peak working set; invoked by the runner between chunks (and by the
    sweep epilogue), this publishes the high-water mark as the
    ``repro_backend_scratch_bytes`` gauge and returns the pinned buffers
    to the allocator so one large batch cannot pin peak memory for the
    rest of a sweep.  Cheap no-op when nothing is held.
    """
    from repro.core import backends

    held = backends.scratch_nbytes()
    if held:
        telemetry.gauge_set("repro_backend_scratch_bytes", held, agg="max")
        backends.release_all_scratch()
    return held


def _evaluate_chunk(spec, tasks):
    """Worker task: evaluate a chunk with per-task fault isolation.

    ``tasks`` is a tuple of ``(name, config, attempt)``.  Each task is
    wrapped individually, so one raising task costs one ``("err", ...)``
    row instead of the whole chunk; the parent classifies and retries.
    Workers inherit ``REPRO_TELEMETRY`` and ``REPRO_FAULTS`` from the
    environment; buffered telemetry travels home as the second element.
    """
    injector = faults.active()
    rows = []
    for name, config, attempt in tasks:
        try:
            if injector is not None:
                injector.worker_task(name, attempt)
                injector.task(name, attempt)
                injector.backend(name, attempt, config.backend)
            rows.append(("ok", name, _evaluate_spec(spec, config)))
        except Exception as exc:
            rows.append(("err", name, _error_summary(exc)))
    _reclaim_scratch()
    return rows, telemetry.drain_worker()


def _evaluate_batch_chunk(spec, tasks):
    """Worker task for the batched sweep path: one compatible group.

    Same row protocol, fault isolation, and per-task semantics as
    :func:`_evaluate_chunk` — each configuration still lands its own
    result row under its own cache key, so cache/resume/retry bookkeeping
    is byte-identical to the unbatched path.  The difference is upstream:
    the parent only forms these chunks from configurations sharing a
    batch signature (:meth:`~repro.core.config.IHWConfig.batch_signature`),
    so a group traverses one datapath shape back-to-back (hot framework
    memo and reference run, one scratch reclamation per group), and
    shared-operand consumers inside the evaluation can rely on
    :class:`~repro.core.ContextBatch` compatibility across the chunk.
    Failed rows are retried solo by the parent (retries never share a
    chunk), which is exactly "split the batch into singles".
    """
    return _evaluate_chunk(spec, tasks)


def _call_chunk(func, tasks):
    """Worker task for :meth:`ExperimentRunner.map`, same row protocol.

    ``tasks`` is a tuple of ``(index, label, arguments, attempt)``; rows
    are keyed by the index so results stay aligned with their labels no
    matter how tasks fail, retry, or complete out of order.
    """
    injector = faults.active()
    rows = []
    for index, label, arguments, attempt in tasks:
        try:
            if injector is not None:
                injector.worker_task(label, attempt)
                injector.task(label, attempt)
            start = time.perf_counter()
            result = func(*arguments)
            rows.append(("ok", index, (result, time.perf_counter() - start)))
        except Exception as exc:
            rows.append(("err", index, _error_summary(exc)))
    return rows, telemetry.drain_worker()


def _terminate_pool(pool) -> None:
    """Tear a pool down even when its workers are hung.

    ``shutdown`` alone would join a hung worker forever, so the worker
    processes are terminated first.  Touches the executor's private
    process table — there is no public kill switch — guarded so a future
    stdlib reshape degrades to a plain shutdown.
    """
    for process in list(getattr(pool, "_processes", {}).values() or []):
        try:
            process.terminate()
        except OSError:
            pass  # already gone
    pool.shutdown(wait=False, cancel_futures=True)


class ExperimentRunner:
    """Fan configuration evaluations out over processes, through a cache.

    Parameters
    ----------
    max_workers:
        Process count; default auto-detected from the machine.  ``1``
        selects the in-process sequential path.
    cache:
        ``"auto"`` (default): honor ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``;
        ``None``/``False``: caching off; or a :class:`ResultCache`.
    chunk_size:
        Configurations per dispatched task; default balances ~2 chunks
        per worker so stragglers overlap.  Retries always dispatch solo.
    policy:
        :class:`~repro.runtime.policy.RetryPolicy` governing retries,
        timeouts, and degradation (default: two retries, no deadline).
    checkpoint_every:
        Completed tasks between sweep-manifest flushes (0 disables
        manifests entirely).
    """

    def __init__(self, max_workers: int | None = None, cache="auto",
                 chunk_size: int | None = None,
                 policy: RetryPolicy | None = None,
                 checkpoint_every: int = 8):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.max_workers = max_workers or default_worker_count()
        if cache == "auto":
            self.cache = cache_from_env()
        elif cache in (None, False):
            self.cache = None
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.chunk_size = chunk_size
        self.policy = policy or RetryPolicy()
        self.checkpoint_every = checkpoint_every
        self.stats = RunnerStats(max_workers=self.max_workers)
        self._frameworks: dict = {}
        # Parent-process thread resolution for the parallel backends; pool
        # workers are pinned to 1 by _worker_init, so workers x threads
        # stays bounded by max(workers, threads).
        from repro.core.backends.threads import resolve_thread_count

        telemetry.gauge_set("repro_backend_threads", resolve_thread_count())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, spec, config):
        """One cached evaluation, always in-process (autotuner probes).

        Shares the sweep path's retry and backend-fallback behavior; a
        probe against a flaky backend degrades to ``reference`` instead
        of aborting an autotuning session.
        """
        cached = self.cache.get(spec, config) if self.cache else None
        if cached is not None:
            return cached
        injector = faults.active()
        task = _PendingTask(key="evaluate", label="evaluate", payload=config)
        events = _new_events()
        evaluation, seconds = self._run_inline_with_retry(
            task, lambda t: self._evaluate_inline_guarded(spec, t, injector),
            events,
        )
        if self.cache:
            self.cache.put(spec, config, evaluation, seconds)
        return evaluation

    def sweep(self, spec, configs, resume: bool = False,
              batch: bool = True) -> dict:
        """Evaluate ``{name: IHWConfig}`` and return ``{name: Evaluation}``.

        Insertion order is preserved; ``self.stats`` afterwards describes
        this sweep.  With ``resume=True`` and a cache, a manifest left by
        an interrupted run of the same sweep is consulted and the count
        of already-completed configurations is reported in
        ``stats.resumed_skipped`` (their results come from the cache —
        zero recomputation).  On an unrecoverable failure
        (:class:`TaskFailedError`) the manifest still records every
        completed configuration, so the next ``resume=True`` run picks up
        where this one stopped.

        With ``batch=True`` (the default) cache misses are grouped by
        :meth:`~repro.core.config.IHWConfig.batch_signature` and each
        dispatched chunk stays inside one batch-compatible group
        (:func:`_evaluate_batch_chunk`).  Batching never changes what is
        computed — every configuration keeps its own result, cache entry,
        manifest mark, and retry budget, and results are bit-identical to
        ``batch=False`` — it only changes how misses are scheduled, plus
        scratch-pool reclamation between groups.
        """
        wall_start = time.perf_counter()
        injector = faults.active()
        events = _new_events()
        results: dict = {}
        timings: dict = {}
        configs = dict(configs)
        manifest = None
        chunk_size = self._chunk_size_for(len(configs))
        sig_groups: dict = {}
        if self.cache is not None:
            self.cache.cleanup_stale()
            # Manifests live under the cache root; a remote (HTTP) backend
            # has no local paths, so checkpoint/resume is local-only.
            if self.checkpoint_every and self.cache.local_root is not None:
                manifest = SweepManifest.for_sweep(self.cache, spec, configs)
        completions = 0

        def deliver(task, value, seconds):
            nonlocal completions
            results[task.key] = value
            timings[task.key] = TaskTiming(
                task.key, seconds,
                attempts=task.attempt + 1, fallback=task.fallback,
            )
            record_group(sig_groups, group_key(configs[task.key]), hit=False)
            if task.fallback:
                events["fallback_notes"].append(task.key)
            if self.cache:
                self.cache.put(spec, configs[task.key], value, seconds)
                if injector is not None and injector.corrupt_cache(task.key):
                    faults.corrupt_entry(self.cache, spec, configs[task.key])
            if manifest is not None:
                manifest.mark(task.key)
                completions += 1
                if completions % self.checkpoint_every == 0:
                    manifest.flush()

        try:
            with telemetry.span(
                "sweep", app=spec.app, metric=spec.metric, configs=len(configs)
            ) as sweep_span:
                misses = []
                for name, config in configs.items():
                    cached = self.cache.get(spec, config) if self.cache else None
                    if cached is not None:
                        results[name] = cached
                        timings[name] = TaskTiming(name, 0.0, cached=True)
                        record_group(sig_groups, group_key(config), hit=True)
                        if manifest is not None:
                            manifest.mark(name)
                        if resume and manifest is not None and (
                            name in manifest.previously_completed
                        ):
                            events["resumed_skipped"] += 1
                    else:
                        misses.append(_PendingTask(name, name, config))
                chunk_key = None
                worker = _evaluate_chunk
                if batch and misses:
                    # Group-ordered dispatch: misses sharing a batch
                    # signature run back-to-back and never split across a
                    # chunk boundary with an incompatible configuration.
                    # The backend-exempt fallback retry (with_backend)
                    # preserves the signature, and retries dispatch solo
                    # anyway, so the key stays stable for a task's life.
                    groups: dict = {}
                    for task in misses:
                        key = task.payload.batch_signature()
                        groups.setdefault(key, []).append(task)
                    misses = [t for group in groups.values() for t in group]
                    chunk_key = lambda task: task.payload.batch_signature()
                    worker = _evaluate_batch_chunk
                    if len(groups) > 1:
                        events["notes"].append(
                            f"batched {len(misses)} misses into "
                            f"{len(groups)} compatible groups"
                        )
                chunk_size = self._chunk_size_for(len(misses))
                self._execute(
                    tasks=misses,
                    chunk_size=chunk_size,
                    call_factory=lambda chunk: (
                        worker,
                        spec,
                        tuple((t.key, t.payload, t.attempt) for t in chunk),
                    ),
                    inline_call=lambda t: self._evaluate_inline_guarded(
                        spec, t, injector
                    ),
                    prepare_retry=self._sweep_prepare_retry,
                    deliver=deliver,
                    events=events,
                    parent_span_id=sweep_span["id"] if sweep_span else None,
                    chunk_key=chunk_key,
                )
        finally:
            _reclaim_scratch()
            if manifest is not None:
                manifest.flush()
            self.stats = self._build_stats(
                wall_seconds=time.perf_counter() - wall_start,
                chunk_size=chunk_size,
                tasks=[timings[name] for name in configs if name in timings],
                events=events,
                signature_groups=sig_groups,
            )
            telemetry.record_runner_stats(self.stats, app=spec.app)
        return {name: results[name] for name in configs}

    def map(self, func, argument_tuples, labels=None) -> list:
        """Generic fan-out: ``[func(*args) for args in argument_tuples]``.

        ``func`` must be a module-level (picklable) callable.  Used by the
        characterization sweeps; results keep input order — including
        across per-task failures and retries, which are routed by index —
        and the run is recorded in ``self.stats`` (no caching here).
        """
        argument_tuples = list(argument_tuples)
        labels = list(labels) if labels is not None else [
            f"task{i}" for i in range(len(argument_tuples))
        ]
        if len(labels) != len(argument_tuples):
            raise ValueError("labels and argument_tuples lengths differ")
        wall_start = time.perf_counter()
        injector = faults.active()
        events = _new_events()
        chunk_size = self._chunk_size_for(len(argument_tuples))
        slots: list = [None] * len(argument_tuples)
        timings: list = [None] * len(argument_tuples)

        def inline_call(task):
            if injector is not None:
                injector.task(task.label, task.attempt)
            start = time.perf_counter()
            result = func(*task.payload)
            return result, time.perf_counter() - start

        def deliver(task, value, seconds):
            slots[task.key] = value
            timings[task.key] = TaskTiming(
                task.label, seconds, attempts=task.attempt + 1
            )

        tasks = [
            _PendingTask(index, label, arguments)
            for index, (label, arguments) in enumerate(
                zip(labels, argument_tuples)
            )
        ]
        try:
            with telemetry.span(
                "map", func=getattr(func, "__name__", str(func)),
                tasks=len(argument_tuples),
            ) as map_span:
                self._execute(
                    tasks=tasks,
                    chunk_size=chunk_size,
                    call_factory=lambda chunk: (
                        _call_chunk,
                        func,
                        tuple(
                            (t.key, t.label, t.payload, t.attempt)
                            for t in chunk
                        ),
                    ),
                    inline_call=inline_call,
                    prepare_retry=lambda task: "retry",
                    deliver=deliver,
                    events=events,
                    parent_span_id=map_span["id"] if map_span else None,
                )
        finally:
            self.stats = self._build_stats(
                wall_seconds=time.perf_counter() - wall_start,
                chunk_size=chunk_size,
                tasks=[t for t in timings if t is not None],
                events=events,
            )
        return slots

    # ------------------------------------------------------------------
    # Fault-tolerant execution engine
    # ------------------------------------------------------------------
    def _execute(self, tasks, chunk_size, call_factory, inline_call,
                 prepare_retry, deliver, events, parent_span_id=None,
                 chunk_key=None):
        """Drive every task to completion (or exhaust its retries).

        Tasks flow: queue -> dispatched chunk -> delivered, with failures
        looping back into the queue until ``policy.max_retries`` is
        spent.  ``max_workers == 1`` — or degradation after repeated pool
        losses — drains the queue through ``inline_call`` instead: the
        bit-identical sequential path.

        ``chunk_key`` (optional, ``task -> hashable``) constrains chunk
        formation: a chunk never mixes tasks with different keys.  The
        batched sweep path uses it to keep every dispatched chunk inside
        one batch-compatible configuration group.
        """
        policy = self.policy
        queue = deque(tasks)
        if not queue:
            return
        pool = None
        pending: dict = {}  # future -> (chunk tasks, deadline or None)
        workers = min(
            self.max_workers,
            max(1, math.ceil(len(tasks) / max(1, chunk_size))),
        )
        consecutive_pool_failures = 0
        degraded = self.max_workers == 1
        try:
            while queue or pending:
                if degraded:
                    while queue:
                        task = queue.popleft()
                        value, seconds = self._run_inline_with_retry(
                            task, inline_call, events,
                            prepare_retry=prepare_retry,
                        )
                        deliver(task, value, seconds)
                    continue
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=workers, initializer=_worker_init
                    )
                while queue:
                    chunk = [queue.popleft()]
                    while (
                        len(chunk) < chunk_size and queue
                        and chunk[0].attempt == 0 and queue[0].attempt == 0
                        and (chunk_key is None
                             or chunk_key(queue[0]) == chunk_key(chunk[0]))
                    ):
                        chunk.append(queue.popleft())
                    future = pool.submit(*call_factory(chunk))
                    deadline = policy.chunk_deadline_seconds(len(chunk))
                    pending[future] = (
                        chunk,
                        time.monotonic() + deadline if deadline else None,
                    )

                deadlines = [d for _, d in pending.values() if d is not None]
                timeout = (
                    max(0.0, min(deadlines) - time.monotonic())
                    if deadlines else None
                )
                done, _ = wait(pending, timeout=timeout,
                               return_when=FIRST_COMPLETED)

                pool_broken = False
                for future in done:
                    chunk, _deadline = pending.pop(future)
                    try:
                        rows, worker_telemetry = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        self._requeue_chunk(
                            chunk, queue, events,
                            reason="worker process died (BrokenProcessPool)",
                            charge_attempt=True,
                        )
                        continue
                    consecutive_pool_failures = 0
                    telemetry.absorb_worker(worker_telemetry,
                                            parent_id=parent_span_id)
                    by_key = {task.key: task for task in chunk}
                    for status, key, payload in rows:
                        task = by_key[key]
                        if status == "ok":
                            deliver(task, *payload)
                        else:
                            self._retry_or_raise(
                                task, payload, queue, events, prepare_retry
                            )

                if pool_broken:
                    # Every other in-flight future shares the dead pool.
                    for future, (chunk, _deadline) in pending.items():
                        self._requeue_chunk(
                            chunk, queue, events,
                            reason="worker process died (BrokenProcessPool)",
                            charge_attempt=True,
                        )
                    pending.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    consecutive_pool_failures += 1
                    events["pool_rebuilds"] += 1
                    telemetry.counter_inc("repro_runtime_pool_rebuilds_total")
                    if consecutive_pool_failures >= policy.pool_failure_limit:
                        degraded = True
                        events["degraded"] = True
                        events["notes"].append(
                            f"degraded to sequential after "
                            f"{consecutive_pool_failures} consecutive pool "
                            "failures"
                        )
                        telemetry.counter_inc("repro_runtime_degraded_total",
                                              mode="sequential")
                    continue

                now = time.monotonic()
                expired = [
                    future for future, (_chunk, deadline) in pending.items()
                    if deadline is not None and deadline <= now
                ]
                if expired:
                    # A hung worker can only be cleared by terminating the
                    # pool; expired chunks are charged an attempt, innocent
                    # in-flight chunks are requeued as they were.
                    for future in expired:
                        chunk, _deadline = pending.pop(future)
                        events["timeouts"] += 1
                        telemetry.counter_inc("repro_runtime_timeouts_total")
                        self._requeue_chunk(
                            chunk, queue, events,
                            reason=(
                                f"task deadline exceeded "
                                f"({policy.task_timeout}s/task)"
                            ),
                            charge_attempt=True,
                        )
                    for future, (chunk, _deadline) in pending.items():
                        self._requeue_chunk(chunk, queue, events,
                                            reason="", charge_attempt=False)
                    pending.clear()
                    _terminate_pool(pool)
                    pool = None
                    events["pool_rebuilds"] += 1
                    telemetry.counter_inc("repro_runtime_pool_rebuilds_total")
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _requeue_chunk(self, chunk, queue, events, reason: str,
                       charge_attempt: bool) -> None:
        """Put a chunk's tasks back on the queue after a pool-level loss."""
        for task in chunk:
            if charge_attempt:
                self._retry_or_raise(task, reason, queue, events,
                                     prepare_retry=None, backoff=False)
            else:
                queue.append(task)

    def _retry_or_raise(self, task, error: str, queue, events,
                        prepare_retry=None, backoff: bool = True) -> None:
        """Charge one failed attempt; requeue with backoff or give up."""
        task.attempt += 1
        if task.attempt > self.policy.max_retries:
            raise TaskFailedError(task.label, task.attempt, error)
        kind = prepare_retry(task) if prepare_retry is not None else "retry"
        events["retries"] += 1
        telemetry.counter_inc("repro_runtime_retries_total", kind=kind)
        if kind == "backend-fallback":
            events["fallbacks"] += 1
            telemetry.counter_inc("repro_runtime_fallbacks_total",
                                  kind="backend")
        if backoff:
            delay = self.policy.backoff_seconds(task.label, task.attempt)
            if delay > 0:
                time.sleep(delay)
        queue.append(task)

    def _run_inline_with_retry(self, task, inline_call, events,
                               prepare_retry=None):
        """Sequential execution of one task, same retry/fallback rules."""
        while True:
            try:
                return inline_call(task)
            except Exception as exc:
                # Inline retry loop: requeue-to-self (the deque-based
                # engine handles pool dispatch; here the task just spins
                # in place until it succeeds or exhausts its budget).
                local: deque = deque()
                self._retry_or_raise(task, _error_summary(exc), local,
                                     events, prepare_retry)

    @staticmethod
    def _sweep_prepare_retry(task) -> str:
        """Classify a sweep retry: flaky non-reference backends fall back.

        Any failure of a task whose config selects a non-``reference``
        compute backend retries on ``reference`` — the parity contract
        makes the results bit-identical, so trading speed for certainty
        is always sound mid-sweep.
        """
        config = task.payload
        backend = getattr(config, "backend", None)
        if backend not in (None, "", "reference"):
            task.payload = config.with_backend("reference")
            task.fallback = True
            return "backend-fallback"
        return "retry"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate_inline_guarded(self, spec, task, injector):
        """Inline evaluation with the process-agnostic fault guards."""
        if injector is not None:
            injector.task(task.label, task.attempt)
            injector.backend(task.label, task.attempt, task.payload.backend)
        return self._evaluate_inline(spec, task.payload)

    def _evaluate_inline(self, spec, config):
        framework = _memo_framework(self._frameworks, spec)
        start = time.perf_counter()
        evaluation = framework.evaluate(config)
        return evaluation, time.perf_counter() - start

    def _build_stats(self, wall_seconds, chunk_size, tasks, events,
                     signature_groups=None):
        notes = list(events["notes"])
        if events["fallback_notes"]:
            fell_back = ", ".join(sorted(events["fallback_notes"]))
            notes.append(f"backend fell back to reference for: {fell_back}")
        return RunnerStats(
            wall_seconds=wall_seconds,
            max_workers=self.max_workers,
            chunk_size=chunk_size,
            tasks=tasks,
            retries=events["retries"],
            fallbacks=events["fallbacks"],
            timeouts=events["timeouts"],
            pool_rebuilds=events["pool_rebuilds"],
            degraded=events["degraded"],
            resumed_skipped=events["resumed_skipped"],
            notes=notes,
            signature_groups=signature_groups or {},
        )

    def _chunk_size_for(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        if n_tasks <= 0 or self.max_workers == 1:
            return 1
        return max(1, math.ceil(n_tasks / (self.max_workers * 2)))


def _new_events() -> dict:
    return {
        "retries": 0,
        "fallbacks": 0,
        "timeouts": 0,
        "pool_rebuilds": 0,
        "degraded": False,
        "resumed_skipped": 0,
        "notes": [],
        "fallback_notes": [],
    }
