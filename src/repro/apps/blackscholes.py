"""Black-Scholes option pricing — the negative control.

Chapter 1 scopes the whole approach: "many applications ... do require
extremely high accuracies, such as various models in financial engineering
where a small error would result in millions of dollars difference."  This
app makes that scoping claim measurable: a Black-Scholes European option
pricer (the classic GPU finance kernel) run on the imprecise units, scored
by the dollar error over a book of options.

The expected result — asserted by the tests and the negative-control bench
— is that *no* Table-1 configuration keeps the book repricing error inside
a one-basis-point tolerance, while the error-tolerant applications sail
through the same hardware.  Imprecise hardware is an application-selective
technique, and this is the application that selects it out.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["option_book", "run", "reference_run"]

_INV_SQRT2 = np.float32(1.0 / np.sqrt(2.0))


def option_book(n_options: int = 512, seed: int = 23) -> dict:
    """A synthetic book of European calls: spot, strike, vol, rate, expiry."""
    if n_options < 1:
        raise ValueError(f"need at least one option, got {n_options}")
    rng = np.random.default_rng(seed)
    return {
        "spot": rng.uniform(50.0, 150.0, n_options).astype(np.float32),
        "strike": rng.uniform(50.0, 150.0, n_options).astype(np.float32),
        "vol": rng.uniform(0.1, 0.6, n_options).astype(np.float32),
        "rate": rng.uniform(0.0, 0.08, n_options).astype(np.float32),
        "expiry": rng.uniform(0.1, 2.0, n_options).astype(np.float32),
    }


def _erf_poly(ctx, x):
    """Abramowitz-Stegun erf approximation through the counted ops.

    ``erf(x) ~= 1 - (a1 t + a2 t^2 + a3 t^3) exp(-x^2)`` with
    ``t = 1/(1 + p x)`` — the polynomial form GPU math libraries use, so
    the imprecise mul/add/rcp units all participate.
    """
    p = np.float32(0.47047)
    a1, a2, a3 = np.float32(0.3480242), np.float32(-0.0958798), np.float32(0.7478556)
    ax = np.abs(x).astype(ctx.dtype)
    t = ctx.rcp(ctx.add(np.float32(1.0), ctx.mul(p, ax)))
    poly = ctx.mul(
        t, ctx.add(a1, ctx.mul(t, ctx.add(a2, ctx.mul(a3, t))))
    )
    # precise: host-side — exp is host-evaluated (the SFU exp unit is
    # outside the paper's set).
    gauss = np.exp(-np.asarray(ax, dtype=np.float64) ** 2).astype(ctx.dtype)
    magnitude = ctx.sub(np.float32(1.0), ctx.mul(poly, gauss))
    return np.where(np.asarray(x) < 0, -magnitude, magnitude).astype(ctx.dtype)


def _norm_cdf(ctx, x):
    """Standard normal CDF via the counted erf."""
    return ctx.mul(
        np.float32(0.5),
        ctx.add(np.float32(1.0), _erf_poly(ctx, ctx.mul(x, _INV_SQRT2))),
    )


def run(
    config: IHWConfig | None = None,
    n_options: int = 512,
    book: dict | None = None,
) -> AppResult:
    """Price the book; returns the per-option call prices (dollars)."""
    ctx = make_context(config)
    if book is None:
        book = option_book(n_options)
    s = ctx.array(book["spot"])
    k = ctx.array(book["strike"])
    v = ctx.array(book["vol"])
    r = ctx.array(book["rate"])
    t = ctx.array(book["expiry"])

    sqrt_t = ctx.sqrt(t)
    vol_sqrt_t = ctx.mul(v, sqrt_t)
    # d1 = [ln(S/K) + (r + v^2/2) t] / (v sqrt(t))
    log_moneyness = ctx.mul(
        np.float32(np.log(2.0)), ctx.log2(ctx.div(s, k))
    )
    drift = ctx.mul(
        ctx.add(r, ctx.mul(np.float32(0.5), ctx.mul(v, v))), t
    )
    d1 = ctx.div(ctx.add(log_moneyness, drift), vol_sqrt_t)
    d2 = ctx.sub(d1, vol_sqrt_t)

    discount = np.exp(
        # precise: host-side (float64 discount factor, computed once per batch)
        -np.asarray(r, dtype=np.float64) * np.asarray(t, dtype=np.float64)
    ).astype(ctx.dtype)
    price = ctx.sub(
        ctx.mul(s, _norm_cdf(ctx, d1)),
        ctx.mul(ctx.mul(k, discount), _norm_cdf(ctx, d2)),
    )
    prices = np.maximum(np.asarray(price, dtype=np.float64), 0.0)

    n = len(prices)
    return finish(
        "blackscholes",
        prices,
        ctx,
        int_ops=6 * n,
        mem_ops=8 * n,
        ctrl_ops=n,
        threads=n,
    )


def reference_run(n_options: int = 512, book: dict | None = None) -> AppResult:
    """The precise pricing run."""
    return run(None, n_options=n_options, book=book)
