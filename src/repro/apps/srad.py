"""SRAD — Speckle Reducing Anisotropic Diffusion (Rodinia benchmark port).

SRAD [Yu & Acton, IEEE TIP 2002] removes multiplicative speckle noise from
ultrasonic/radar images by anisotropic diffusion: per pixel, a diffusion
coefficient is derived from the local coefficient of variation relative to
the global speckle statistics, then the image is updated with the divergence
of the coefficient-weighted gradients.  The computational kernel is heavy in
FP multiplication, addition, and division (27% of GPU power in FPU+SFU per
Figure 2).

The paper evaluates quality with Pratt's figure of merit between binary edge
maps of the ideal segmentation, the precise SRAD result, and the imprecise
result (Figure 16: FOM 0.20 precise vs 0.23 imprecise — the arithmetic noise
is dwarfed by the image's own speckle).  Lacking the clinical ultrasound
input, :func:`speckle_phantom` generates the standard synthetic phantom for
speckle filters: a dark ellipse on a bright background under multiplicative
speckle — the same statistics the quality comparison depends on.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["speckle_phantom", "ideal_edges", "detect_edges", "run", "reference_run"]


def speckle_phantom(rows: int = 64, cols: int = 64, seed: int = 11,
                    noise: float = 0.35) -> tuple:
    """Synthetic ultrasound phantom: ``(noisy image, clean image)``.

    A dark ellipse (the "cyst") on a brighter tissue background, corrupted
    by multiplicative speckle (gamma-distributed, the standard model).
    """
    if rows < 16 or cols < 16:
        raise ValueError(f"phantom too small: {rows}x{cols}")
    y, x = np.mgrid[0:rows, 0:cols]
    cy, cx = rows / 2.0, cols / 2.0
    ellipse = ((y - cy) / (rows * 0.28)) ** 2 + ((x - cx) / (cols * 0.2)) ** 2 <= 1.0
    clean = np.where(ellipse, 0.25, 0.75).astype(np.float32)
    rng = np.random.default_rng(seed)
    speckle = rng.gamma(shape=1.0 / noise**2, scale=noise**2, size=(rows, cols))
    noisy = np.clip(clean * speckle, 0.02, 2.0).astype(np.float32)
    return noisy, clean


def ideal_edges(rows: int = 64, cols: int = 64) -> np.ndarray:
    """Boundary of the clean phantom ellipse (the ideal segmentation map)."""
    _, clean = speckle_phantom(rows, cols)
    interior = clean < 0.5
    return interior ^ ndimage.binary_erosion(interior)


def detect_edges(image: np.ndarray, percentile: float = 92.0) -> np.ndarray:
    """Binary edge map via gradient-magnitude thresholding."""
    img = np.asarray(image, dtype=np.float64)
    gy, gx = np.gradient(img)
    magnitude = np.hypot(gx, gy)
    threshold = np.percentile(magnitude, percentile)
    return magnitude > threshold


def _neighbors(img):
    north = np.vstack([img[:1, :], img[:-1, :]])
    south = np.vstack([img[1:, :], img[-1:, :]])
    west = np.hstack([img[:, :1], img[:, :-1]])
    east = np.hstack([img[:, 1:], img[:, -1:]])
    return north, south, east, west


def run(
    config: IHWConfig | None = None,
    rows: int = 64,
    cols: int = 64,
    iterations: int = 30,
    lam: float = 0.5,
    image: np.ndarray | None = None,
) -> AppResult:
    """Diffuse the speckled phantom and return the filtered image."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0 < lam <= 1:
        raise ValueError(f"lambda must be in (0, 1], got {lam}")
    ctx = make_context(config)
    if image is None:
        image, _ = speckle_phantom(rows, cols)
    else:
        rows, cols = image.shape
    img = ctx.array(image)
    quarter = np.float32(0.25)
    one = np.float32(1.0)
    sixteenth = np.float32(1.0 / 16.0)
    half = np.float32(0.5)
    lam4 = np.float32(lam / 4.0)

    for _ in range(iterations):
        # Global speckle scale q0^2 from image statistics (host-side scalars
        # in the CUDA version's reduction kernel; kept precise like the
        # paper's essential control path).
        mean = float(np.mean(img))
        var = float(np.var(img))
        # Floor the speckle scale: a constant (speckle-free) image must not
        # divide by zero — with q0 ~ 0 the coefficient c collapses to ~0 and
        # the image is left untouched, the physically right behavior.
        q0sq = np.float32(max(var / (mean * mean) if mean else 1.0, 1e-12))

        north, south, east, west = _neighbors(img)
        dn = ctx.sub(north, img)
        ds = ctx.sub(south, img)
        dw = ctx.sub(west, img)
        de = ctx.sub(east, img)

        img_inv = ctx.rcp(img)
        g2 = ctx.mul(
            ctx.add(
                ctx.add(ctx.mul(dn, dn), ctx.mul(ds, ds)),
                ctx.add(ctx.mul(dw, dw), ctx.mul(de, de)),
            ),
            ctx.mul(img_inv, img_inv),
        )
        laplacian = ctx.mul(ctx.add(ctx.add(dn, ds), ctx.add(dw, de)), img_inv)

        num = ctx.sub(ctx.mul(half, g2), ctx.mul(sixteenth, ctx.mul(laplacian, laplacian)))
        den_base = ctx.add(one, ctx.mul(quarter, laplacian))
        den = ctx.mul(den_base, den_base)
        qsq = ctx.div(num, den)

        # c = 1 / (1 + (q^2 - q0^2) / (q0^2 (1 + q0^2)))
        scale = np.float32(1.0 / (float(q0sq) * (1.0 + float(q0sq))))
        c = ctx.rcp(ctx.add(one, ctx.mul(ctx.sub(qsq, q0sq), scale)))
        c = np.clip(c, 0.0, 1.0).astype(np.float32)

        c_south = np.vstack([c[1:, :], c[-1:, :]])
        c_east = np.hstack([c[:, 1:], c[:, -1:]])
        divergence = ctx.add(
            ctx.add(ctx.mul(c_south, ds), ctx.mul(c, dn)),
            ctx.add(ctx.mul(c_east, de), ctx.mul(c, dw)),
        )
        img = ctx.add(img, ctx.mul(lam4, divergence))

    cells = rows * cols
    return finish(
        "srad",
        np.asarray(img, dtype=np.float64),
        ctx,
        int_ops=18 * cells * iterations,  # two kernels' index arithmetic
        mem_ops=28 * cells * iterations,  # dN/dS/dW/dE and c staged in global memory
        ctrl_ops=cells * iterations // 8,
        threads=cells,
    )


def reference_run(rows: int = 64, cols: int = 64, iterations: int = 30,
                  image: np.ndarray | None = None) -> AppResult:
    """The precise baseline execution."""
    return run(None, rows=rows, cols=cols, iterations=iterations, image=image)
