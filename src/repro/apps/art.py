"""179.art — Adaptive Resonance Theory 2 neural network (SPEC2000 substitute).

The SPEC 179.art benchmark trains an ART-2 neural network to recognize
objects (a helicopter and an airplane) in a thermal image and reports the
coordinates of the recognized object plus a confidence of match (the
*vigilance*), which the paper uses as the quality metric (Figure 21a).

This port keeps the numerically dominant structure: F1-layer normalization
of each candidate window and F2-layer resonance — the normalized inner
product between the window and each learned category template — evaluated
over a sliding scan of the image.  The arithmetic is double precision and
almost entirely multiplication (89% of FP ops in Table 6), so the benchmark
isolates the configurable multiplier's accuracy ladder.

The synthetic thermal image plants one of the templates (plus clutter and
sensor noise) at a known location, standing in for SPEC's input scenes.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["make_templates", "make_scene", "run", "reference_run"]

_WINDOW = 16


def make_templates() -> dict:
    """Binary silhouettes of the two SPEC objects on a 16x16 window."""
    airplane = np.zeros((_WINDOW, _WINDOW), dtype=np.float64)
    airplane[7:9, 1:15] = 1.0  # fuselage
    airplane[2:14, 7:9] = 1.0  # wings
    airplane[12:14, 5:11] = 1.0  # tail

    helicopter = np.zeros((_WINDOW, _WINDOW), dtype=np.float64)
    helicopter[8:11, 3:13] = 1.0  # body
    helicopter[9:10, 12:16] = 1.0  # tail boom
    helicopter[3:5, 1:15] = 1.0  # rotor
    helicopter[5:8, 7:9] = 1.0  # mast
    return {"airplane": airplane, "helicopter": helicopter}


def make_scene(
    target: str = "helicopter",
    size: int = 48,
    location: tuple = (20, 12),
    noise: float = 0.15,
    seed: int = 3,
) -> np.ndarray:
    """Thermal image with the target silhouette at ``location`` plus noise."""
    templates = make_templates()
    if target not in templates:
        raise ValueError(f"unknown target {target!r}; expected {sorted(templates)}")
    r0, c0 = location
    if not (0 <= r0 <= size - _WINDOW and 0 <= c0 <= size - _WINDOW):
        raise ValueError(f"location {location} out of bounds for size {size}")
    rng = np.random.default_rng(seed)
    scene = rng.uniform(0.0, noise, (size, size))
    scene[r0 : r0 + _WINDOW, c0 : c0 + _WINDOW] += templates[target] * 0.9
    # Warm clutter blob elsewhere.
    scene[: size // 6, : size // 6] += 0.35
    return np.clip(scene, 0.0, 1.2)


_F1_ITERATIONS = 3
_GAIN_A = 1.08
_GAIN_B = 1.0 / 1.08


def _reduce_sum(ctx, values):
    """Tree reduction with counted adds (power-of-two length)."""
    acc = ctx.add(values[::2], values[1::2])
    while acc.size > 1:
        acc = ctx.add(acc[::2], acc[1::2])
    return float(acc[0])


def _f1_layer(ctx, x):
    """ART-2 F1 gain-control dynamics: iterated gain multiplications.

    The two gains cancel exactly in precise arithmetic; on imprecise
    multipliers their systematic error compounds — the network's internal
    amplification of multiplier bias the paper's vigilance curve exposes.
    """
    u = x
    for _ in range(_F1_ITERATIONS):
        u = ctx.mul(u, np.float64(_GAIN_A))
        u = ctx.mul(u, np.float64(_GAIN_B))
    return u


def _window_confidence(ctx, window, template, template_energy: float):
    """ART-2 resonance: Dice-style match between input and category.

    ``conf = 2 (u.w) / (u.u + |w|^2)`` with the category energy ``|w|^2``
    a learned constant — the bottom-up/top-down resonance test whose value
    is the reported vigilance.
    """
    x = _f1_layer(ctx, window.ravel())
    w = template.ravel()
    num = _reduce_sum(ctx, ctx.mul(x, w))
    energy = _reduce_sum(ctx, ctx.mul(x, x))
    # precise: host-side (scalar confidence normalization, as in the CPU scorer)
    return 2.0 * num / max(energy + template_energy, 1e-30)


def run(
    config: IHWConfig | None = None,
    target: str = "helicopter",
    size: int = 48,
    location: tuple = (20, 12),
    stride: int = 4,
    scene: np.ndarray | None = None,
) -> AppResult:
    """Scan the scene; output ``(best_category, (row, col), vigilance)``."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    ctx = make_context(config, dtype=np.float64)
    templates = {k: ctx.array(v) for k, v in make_templates().items()}
    energies = {k: float((np.asarray(v) ** 2).sum()) for k, v in templates.items()}
    if scene is None:
        scene = make_scene(target, size=size, location=location)
    scene = ctx.array(scene)
    size = scene.shape[0]

    best = ("none", (-1, -1), -1.0)
    for r in range(0, size - _WINDOW + 1, stride):
        for c in range(0, size - _WINDOW + 1, stride):
            window = scene[r : r + _WINDOW, c : c + _WINDOW]
            for name, template in templates.items():
                confidence = _window_confidence(ctx, window, template, energies[name])
                if confidence > best[2]:
                    best = (name, (r, c), confidence)

    windows = ((size - _WINDOW) // stride + 1) ** 2
    return finish(
        "179.art",
        best,
        ctx,
        int_ops=windows * _WINDOW * _WINDOW // 2,
        mem_ops=windows * _WINDOW * _WINDOW,
        ctrl_ops=windows * 8,
        threads=windows,
        extras={"target": target, "location": location},
    )


def reference_run(target: str = "helicopter", **kwargs) -> AppResult:
    """The precise baseline scan."""
    return run(None, target=target, **kwargs)
