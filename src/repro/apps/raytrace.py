"""Ray tracing benchmark (ISPASS-2009 RAY port).

A Whitted-style ray tracer over a small sphere scene: per pixel, primary
rays intersect every sphere (dot products, square roots, reciprocals),
shade with a Lambertian term and distance attenuation against a point
light, and bounce up to ``depth`` reflections whose contributions
accumulate.

GPU arithmetic idioms are kept: square roots inside the intersection are
computed as ``x * rsqrt(x)`` (exactly how CUDA evaluates ``sqrtf``), vector
normalization uses the rsqrt unit, and light falloff uses the reciprocal
and sqrt units.  Shading work is gathered per visible sphere so operation
counts reflect the pixels actually shaded.

This is the paper's stress case for imprecise arithmetic: normals and
reflection directions are chains of multiplications whose errors compound
across bounces (Chapter 5.3.1), so

- with only rcp/add/sqrt imprecise the image barely degrades (SSIM ~0.95),
- adding the imprecise rsqrt (intersection roots and normals) drops SSIM
  toward ~0.8,
- the Table-1 multiplier (25% error) destroys the image,
- the improved full-path Mitchell multiplier recovers most of the quality
  while saving more power (Figure 18).

The output is a grayscale irradiance image scored with SSIM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["Sphere", "default_scene", "run", "reference_run"]


@dataclass(frozen=True)
class Sphere:
    """Scene sphere: position, radius, albedo, and mirror reflectivity."""

    center: tuple
    radius: float
    albedo: float
    reflectivity: float = 0.0


def default_scene() -> list:
    """Four shiny spheres over a huge matte floor sphere."""
    return [
        Sphere((0.0, -1004.0, 12.0), 1000.0, 0.6, 0.05),  # floor
        Sphere((0.0, 0.0, 14.0), 3.0, 0.9, 0.5),
        Sphere((-4.5, -1.5, 10.0), 2.0, 0.7, 0.4),
        Sphere((4.5, -1.0, 11.0), 2.5, 0.8, 0.45),
        Sphere((1.5, -2.8, 8.0), 1.0, 1.0, 0.6),
    ]


_LIGHT = (8.0, 12.0, 0.0)
_AMBIENT = 0.08
_DIFFUSE = 0.9
_FALLOFF_LIN = 0.004  # linear attenuation coefficient (uses the sqrt unit)
_FALLOFF_SQ = 0.001  # quadratic attenuation coefficient
_BACKGROUND = 0.12
_FAR = 1.0e8


def _gpu_sqrt(ctx, x):
    """``sqrt(x)`` the way CUDA lowers ``sqrtf``: ``x * rsqrt(x)``."""
    return ctx.mul(x, ctx.rsqrt(x))


def _normalize(ctx, x, y, z):
    """Unit vector via rsqrt of the squared length (the SFU idiom)."""
    len2 = ctx.dot3(x, y, z, x, y, z)
    inv = ctx.rsqrt(len2)
    return ctx.mul(x, inv), ctx.mul(y, inv), ctx.mul(z, inv)


def _intersect(ctx, ox, oy, oz, dx, dy, dz, sphere: Sphere):
    """Ray-sphere hit distance and hit mask."""
    cx, cy, cz = (np.float32(v) for v in sphere.center)
    ocx = ctx.sub(ox, cx)
    ocy = ctx.sub(oy, cy)
    ocz = ctx.sub(oz, cz)
    b = ctx.dot3(ocx, ocy, ocz, dx, dy, dz)
    c2 = ctx.sub(
        ctx.dot3(ocx, ocy, ocz, ocx, ocy, ocz),
        np.float32(sphere.radius * sphere.radius),
    )
    disc = ctx.sub(ctx.mul(b, b), c2)
    hit = disc > 0
    safe_disc = np.where(hit, disc, np.float32(1.0)).astype(np.float32)
    root = _gpu_sqrt(ctx, safe_disc)
    t = ctx.sub(ctx.sub(np.float32(0.0), b), root)
    valid = hit & (t > np.float32(1e-3))
    return np.where(valid, t, np.float32(_FAR)).astype(np.float32), valid


def _trace(ctx, ox, oy, oz, dx, dy, dz, scene, depth: int):
    """Shade one flat batch of rays, recursing into reflections."""
    nearest_t = np.full(ox.shape, _FAR, dtype=np.float32)
    nearest_idx = np.full(ox.shape, -1, dtype=np.int64)
    for i, sphere in enumerate(scene):
        t, valid = _intersect(ctx, ox, oy, oz, dx, dy, dz, sphere)
        closer = valid & (t < nearest_t)
        nearest_t = np.where(closer, t, nearest_t).astype(np.float32)
        nearest_idx = np.where(closer, i, nearest_idx)

    color = np.full(ox.shape, _BACKGROUND, dtype=np.float32)
    lx, ly, lz = (np.float32(v) for v in _LIGHT)
    for i, sphere in enumerate(scene):
        sel = np.flatnonzero(nearest_idx == i)
        if sel.size == 0:
            continue
        t = nearest_t[sel]
        gox, goy, goz = ox[sel], oy[sel], oz[sel]
        gdx, gdy, gdz = dx[sel], dy[sel], dz[sel]

        px = ctx.add(gox, ctx.mul(t, gdx))
        py = ctx.add(goy, ctx.mul(t, gdy))
        pz = ctx.add(goz, ctx.mul(t, gdz))

        cx, cy, cz = (np.float32(v) for v in sphere.center)
        nx, ny, nz = _normalize(ctx, ctx.sub(px, cx), ctx.sub(py, cy), ctx.sub(pz, cz))

        lvx = ctx.sub(lx, px)
        lvy = ctx.sub(ly, py)
        lvz = ctx.sub(lz, pz)
        ldx, ldy, ldz = _normalize(ctx, lvx, lvy, lvz)
        lambert = ctx.dot3(nx, ny, nz, ldx, ldy, ldz)
        lambert = np.maximum(lambert, np.float32(0.0)).astype(np.float32)

        dist2 = ctx.dot3(lvx, lvy, lvz, lvx, lvy, lvz)
        dist = ctx.sqrt(dist2)
        atten = ctx.rcp(
            ctx.add(
                np.float32(1.0),
                ctx.add(
                    ctx.mul(np.float32(_FALLOFF_LIN), dist),
                    ctx.mul(np.float32(_FALLOFF_SQ), dist2),
                ),
            )
        )
        diffuse = ctx.mul(np.float32(_DIFFUSE), ctx.mul(lambert, atten))
        shade = ctx.mul(np.float32(sphere.albedo), ctx.add(np.float32(_AMBIENT), diffuse))

        if depth > 0 and sphere.reflectivity > 0:
            dn = ctx.dot3(gdx, gdy, gdz, nx, ny, nz)
            two_dn = ctx.add(dn, dn)
            rx = ctx.sub(gdx, ctx.mul(two_dn, nx))
            ry = ctx.sub(gdy, ctx.mul(two_dn, ny))
            rz = ctx.sub(gdz, ctx.mul(two_dn, nz))
            # Offset the secondary origin off the surface (standard epsilon
            # against self-intersection, host-side constant).
            eps = np.float32(0.02)
            rox = (px + eps * nx).astype(np.float32)  # precise: host-side (origin offset)
            roy = (py + eps * ny).astype(np.float32)  # precise: host-side (origin offset)
            roz = (pz + eps * nz).astype(np.float32)  # precise: host-side (origin offset)
            reflected = _trace(ctx, rox, roy, roz, rx, ry, rz, scene, depth - 1)
            shade = ctx.add(shade, ctx.mul(np.float32(sphere.reflectivity), reflected))

        color[sel] = shade
    return color


def run(
    config: IHWConfig | None = None,
    width: int = 64,
    height: int = 64,
    depth: int = 2,
    scene: list | None = None,
) -> AppResult:
    """Render the scene and return the grayscale image."""
    if width < 8 or height < 8:
        raise ValueError(f"image too small: {width}x{height}")
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    ctx = make_context(config)
    if scene is None:
        scene = default_scene()

    # Camera setup is host-side in the CUDA benchmark: primary directions
    # are built and normalized precisely, not on the imprecise units.
    aspect = width / height
    ys, xs = np.mgrid[0:height, 0:width]
    px = (((xs + 0.5) / width * 2.0 - 1.0) * aspect).ravel()
    py = (1.0 - (ys + 0.5) / height * 2.0).ravel()
    norm = np.sqrt(px * px + py * py + 1.0)
    dx = ctx.array(px / norm)
    dy = ctx.array(py / norm)
    dz = ctx.array(1.0 / norm)

    zeros = np.zeros_like(dx)
    image = _trace(ctx, zeros, zeros, zeros, dx, dy, dz, scene, depth)
    image = np.clip(image, 0.0, 1.0).reshape(height, width)

    pixels = width * height
    return finish(
        "raytracing",
        np.asarray(image, dtype=np.float64),
        ctx,
        int_ops=48 * pixels,  # traversal and addressing arithmetic
        mem_ops=36 * pixels,  # scene/framebuffer traffic per pixel
        ctrl_ops=20 * pixels,  # per-sphere and per-bounce branching
        threads=pixels,
    )


def reference_run(width: int = 64, height: int = 64, depth: int = 2) -> AppResult:
    """The precise baseline render."""
    return run(None, width=width, height=height, depth=depth)
