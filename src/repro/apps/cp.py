"""CP — Coulomb Potential grid computation (Parboil/ISPASS benchmark port).

CP places counterions near a biological molecule by evaluating the Coulomb
potential on a 2-D lattice above a box of point charges:

    V(i, j) = sum_k  q_k / sqrt(dx^2 + dy^2 + dz_k^2)

Per (grid point, atom) pair the kernel computes the coordinate deltas, the
squared distance, and accumulates ``q * rsqrt(r2)`` — multiply and rsqrt
dominated.  As in the paper's study, the multiplications that produce the
grid point coordinates stay on the precise datapath (~20% of all FP
multiplications), because coordinate errors displace the potential field
rather than perturbing it.

Quality is the mean absolute error (MAE) of the potential map, optionally
with the worst error distance (WED) — the Figure-20 metrics.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["default_atoms", "run", "reference_run"]


def default_atoms(n_atoms: int = 32, seed: int = 5) -> np.ndarray:
    """Random atoms: columns (x, y, z, charge) in a 16x16x8 Angstrom box."""
    if n_atoms < 1:
        raise ValueError(f"need at least one atom, got {n_atoms}")
    rng = np.random.default_rng(seed)
    atoms = np.empty((n_atoms, 4), dtype=np.float32)
    atoms[:, 0] = rng.uniform(0.0, 16.0, n_atoms)
    atoms[:, 1] = rng.uniform(0.0, 16.0, n_atoms)
    atoms[:, 2] = rng.uniform(1.0, 8.0, n_atoms)
    atoms[:, 3] = rng.choice([-1.0, 1.0], n_atoms) * rng.uniform(0.5, 2.0, n_atoms)
    return atoms


def run(
    config: IHWConfig | None = None,
    grid: int = 48,
    spacing: float = 0.35,
    atoms: np.ndarray | None = None,
    precise_coordinates: bool = True,
) -> AppResult:
    """Evaluate the potential lattice; returns the ``grid x grid`` map.

    ``precise_coordinates=False`` disables the paper's design choice of
    pinning the coordinate multiplications to the precise datapath — the
    ablation showing why those ~20% of multiplications must stay exact
    (coordinate errors displace the whole field).
    """
    if grid < 4:
        raise ValueError(f"grid too small: {grid}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    ctx = make_context(config)
    if atoms is None:
        atoms = default_atoms()
    if atoms.ndim != 2 or atoms.shape[1] != 4:
        raise ValueError(f"atoms must be (n, 4), got {atoms.shape}")

    rows = ctx.array(np.arange(grid, dtype=np.float32))[:, None]
    cols = np.broadcast_to(
        np.arange(grid, dtype=np.float32)[None, :], (grid, grid)
    )
    sp = np.float32(spacing)
    # Row coordinates are hoisted out of the atom loop (one precise multiply
    # per point); the unrolled CUDA kernel recomputes the x coordinate per
    # atom block, so that multiply repeats per (point, atom) pair and stays
    # precise — the "~20% kept precise" of the paper's CP study.
    ys = np.broadcast_to(
        ctx.mul(rows, sp, precise=precise_coordinates), (grid, grid)
    ).astype(np.float32)

    potential = ctx.array(np.zeros((grid, grid), dtype=np.float32))
    for ax, ay, az, q in atoms:
        xs = ctx.mul(cols, sp, precise=precise_coordinates)
        dx = ctx.sub(xs, np.float32(ax))
        dy = ctx.sub(ys, np.float32(ay))
        r2 = ctx.add(
            ctx.add(ctx.mul(dx, dx), ctx.mul(dy, dy)),
            np.float32(az * az),  # z-plane term precomputed on the host
        )
        contribution = ctx.mul(np.float32(q), ctx.rsqrt(r2))
        potential = ctx.add(potential, contribution)

    points = grid * grid
    n_atoms = len(atoms)
    return finish(
        "cp",
        np.asarray(potential, dtype=np.float64),
        ctx,
        int_ops=3 * points * n_atoms,
        mem_ops=points * (n_atoms // 4 + 2),  # atom data via constant cache
        ctrl_ops=points * n_atoms // 8,
        threads=points,
    )


def reference_run(grid: int = 48, spacing: float = 0.35,
                  atoms: np.ndarray | None = None) -> AppResult:
    """The precise baseline execution."""
    return run(None, grid=grid, spacing=spacing, atoms=atoms)
