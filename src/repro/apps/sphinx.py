"""482.sphinx3 — isolated-word speech recognition (SPEC2006 substitute).

SPEC's 482.sphinx3 runs the CMU Sphinx-3 decoder; the paper scores 5 AN4
audio streams containing 25 words total and counts the words recognized
correctly under each multiplier configuration (Table 7).

This port keeps the decoder's numerical core: acoustic scoring of cepstral
feature frames against per-word Gaussian models.  Each vocabulary word has
a deterministic prototype feature sequence (frames x coefficients); test
utterances are noisy renditions; recognition picks the word whose
diagonal-Gaussian log-likelihood (sum over frames of precision-weighted
squared differences) is highest.  The vocabulary contains acoustically
confusable word clusters, as AN4's short words are, so small arithmetic
perturbations can flip the closest competitors — the effect Table 7
measures.

All scoring arithmetic is double precision through the instrumented context
(the benchmark's 15.6 billion FP multiplications in Table 6).
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["VOCABULARY", "word_prototype", "make_utterances", "run", "reference_run"]

_FRAMES = 12
_COEFFS = 8

#: 25-word test vocabulary in confusable clusters (digit-like short words).
VOCABULARY = (
    "one", "won", "wan",
    "two", "too", "to",
    "three", "tree",
    "four", "for", "fore",
    "five", "hive",
    "six", "sick",
    "seven", "heaven",
    "eight", "ate",
    "nine", "line",
    "zero", "hero",
    "oh", "owe",
)

_CLUSTERS = (
    (0, 1, 2), (3, 4, 5), (6, 7), (8, 9, 10), (11, 12),
    (13, 14), (15, 16), (17, 18), (19, 20), (21, 22), (23, 24),
)


def word_prototype(index: int) -> np.ndarray:
    """Deterministic prototype features of vocabulary word ``index``.

    Words in the same confusable cluster share a base pattern and differ by
    a small deterministic offset, mirroring acoustically close words.
    """
    if not 0 <= index < len(VOCABULARY):
        raise ValueError(f"word index out of range: {index}")
    cluster = next(i for i, c in enumerate(_CLUSTERS) if index in c)
    within = _CLUSTERS[cluster].index(index)
    t = np.arange(_FRAMES)[:, None]
    d = np.arange(_COEFFS)[None, :]
    base = np.sin(0.35 * (cluster + 1) * t + 0.8 * d) + 0.5 * np.cos(
        0.21 * (cluster + 2) * d * (t + 1)
    )
    rng = np.random.default_rng(1000 + cluster * 10 + within)
    offset = rng.normal(0.0, 0.22, (_FRAMES, _COEFFS))
    return (base + offset).astype(np.float64)


#: Tokens spoken ambiguously: (word index, competitor index, relative score
#: margin).  The features sit close to the decision boundary between the
#: two word models — like AN4's genuinely confusable short words — with a
#: controlled relative margin on the correct side, so arithmetic
#: perturbations of increasing severity flip more of them.
_BOUNDARY_TOKENS = (
    (1, 0, 0.0008),
    (4, 3, 0.0016),
    (9, 8, 0.003),
    (12, 11, 0.006),
    (16, 15, 0.010),
    (20, 19, 0.018),
    (22, 21, 0.032),
)

_PRECISION_SEED = 77


def model_precisions() -> np.ndarray:
    """Diagonal Gaussian precisions shared by all word models."""
    rng = np.random.default_rng(_PRECISION_SEED)
    return rng.uniform(0.6, 1.6, (_FRAMES, _COEFFS))


def _boundary_features(true_idx: int, other_idx: int, margin: float,
                       rng) -> np.ndarray:
    """A feature vector near the decision boundary between two words.

    The token lies on the precision-weighted bisecting hyperplane plus a
    large boundary-parallel utterance component (so the two competing
    score computations see unrelated operand mantissas), then backs off
    toward the true word by ``margin`` (relative to the true score).
    """
    a = word_prototype(true_idx).ravel()
    b = word_prototype(other_idx).ravel()
    p = model_precisions().ravel()
    delta = b - a
    w = rng.normal(0.0, 0.5, a.shape)
    # Remove the p-weighted component of w along delta: f0 = midpoint + w
    # then scores against a and b are equal.
    w -= (p * w * delta).sum() / (p * delta * delta).sum() * delta
    f0 = 0.5 * (a + b) + w
    score_true = float((p * (f0 - a) ** 2).sum())
    energy = float((p * delta * delta).sum())
    # D(gamma) = sum p (f-b)^2 - sum p (f-a)^2 shifts by -2 gamma energy.
    gamma = -margin * score_true / (2.0 * energy)
    return (f0 + gamma * delta).reshape(_FRAMES, _COEFFS)


def make_utterances(noise: float = 0.25, seed: int = 21) -> list:
    """The 5 test streams (25 word tokens): (true index, features).

    Most tokens are the word prototype plus sensor noise; the boundary
    tokens are near-ambiguous renditions between two word models.
    """
    rng = np.random.default_rng(seed)
    boundary = {w: (other, margin) for w, other, margin in _BOUNDARY_TOKENS}
    utterances = []
    for index in range(len(VOCABULARY)):
        if index in boundary:
            other, margin = boundary[index]
            features = _boundary_features(index, other, margin, rng)
        else:
            features = word_prototype(index) + rng.normal(
                0.0, noise, (_FRAMES, _COEFFS)
            )
        utterances.append((index, features))
    return utterances


def _log_likelihood(ctx, features, prototype, precision):
    """Diagonal-Gaussian frame score: ``-sum(prec * (x - mu)^2)``."""
    diff = ctx.sub(features.ravel(), prototype.ravel())
    weighted = ctx.mul(ctx.mul(diff, diff), precision.ravel())
    total = ctx.add(weighted[::2], weighted[1::2])
    while total.size > 1:
        if total.size % 2:
            total = np.concatenate([total, [np.float64(0.0)]])
        total = ctx.add(total[::2], total[1::2])
    return -float(total[0])


def run(
    config: IHWConfig | None = None,
    noise: float = 0.25,
    seed: int = 21,
) -> AppResult:
    """Decode the 25 test words; output the recognized index list."""
    ctx = make_context(config, dtype=np.float64)
    prototypes = [ctx.array(word_prototype(i)) for i in range(len(VOCABULARY))]
    precision = ctx.array(model_precisions())
    utterances = make_utterances(noise=noise, seed=seed)

    recognized = []
    for _, features in utterances:
        feats = ctx.array(features)
        scores = [
            _log_likelihood(ctx, feats, proto, precision) for proto in prototypes
        ]
        recognized.append(int(np.argmax(scores)))

    truth = [index for index, _ in utterances]
    n_tokens = len(utterances)
    n_scores = n_tokens * len(VOCABULARY)
    frame_ops = _FRAMES * _COEFFS
    return finish(
        "482.sphinx",
        recognized,
        ctx,
        int_ops=n_scores * frame_ops // 2,
        mem_ops=n_scores * frame_ops,
        ctrl_ops=n_scores * 4,
        threads=n_tokens,
        extras={"truth": truth},
    )


def reference_run(**kwargs) -> AppResult:
    """The precise baseline decode."""
    return run(None, **kwargs)
