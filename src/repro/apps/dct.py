"""JPEG-style DCT codec — the Figure-5 motivation study, revisited.

The paper motivates imprecise hardware with a JPEG decompression example
from prior work (Figure 5: an imprecise *integer* adder, minimal quality
loss, 24% EDP gain).  This extension runs the same story on *this* paper's
floating point units: an 8x8 block DCT -> quantization -> IDCT pipeline
whose transform arithmetic (multiply-accumulate against the DCT basis)
routes through the instrumented context.

Quality is PSNR of the decoded image against the precise codec at the same
quantization level, so the metric isolates the arithmetic error from the
(intended) quantization loss.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["dct_basis", "test_image", "run", "reference_run"]

_BLOCK = 8

#: The standard JPEG luminance quantization table.
_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float32,
)


def dct_basis() -> np.ndarray:
    """The orthonormal 8x8 DCT-II basis matrix."""
    k = np.arange(_BLOCK)
    n = np.arange(_BLOCK)
    basis = np.cos((2 * n[None, :] + 1) * k[:, None] * np.pi / (2 * _BLOCK))
    basis *= np.sqrt(2.0 / _BLOCK)
    basis[0, :] *= np.sqrt(0.5)
    return basis.astype(np.float32)


def test_image(size: int = 64, seed: int = 17) -> np.ndarray:
    """Synthetic photographic-statistics test image in [0, 255]."""
    if size % _BLOCK:
        raise ValueError(f"size must be a multiple of {_BLOCK}, got {size}")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size] / size
    image = (
        120
        + 70 * np.sin(2 * np.pi * (1.5 * x + 0.5 * y))
        + 40 * np.cos(2 * np.pi * 3.1 * y * x)
    )
    image += rng.normal(0, 4.0, (size, size))  # sensor noise
    image[size // 4 : size // 2, size // 4 : size // 2] += 50  # a bright object
    return np.clip(image, 0, 255).astype(np.float32)


def _blockwise(image: np.ndarray) -> np.ndarray:
    """(n_blocks, 8, 8) view of the image's JPEG blocks."""
    size = image.shape[0]
    blocks = image.reshape(size // _BLOCK, _BLOCK, size // _BLOCK, _BLOCK)
    return blocks.transpose(0, 2, 1, 3).reshape(-1, _BLOCK, _BLOCK)


def _unblock(blocks: np.ndarray, size: int) -> np.ndarray:
    nb = size // _BLOCK
    return (
        blocks.reshape(nb, nb, _BLOCK, _BLOCK).transpose(0, 2, 1, 3).reshape(size, size)
    )


def _matmul(ctx, a, b):
    """Counted batched matrix multiply ``a @ b`` over the instrumented ops.

    ``a`` and ``b`` are ``(..., 8, 8)`` with broadcastable batch dims.  The
    k-loop is unrolled into 8 multiply + 7 add vector steps, exactly the
    MAC structure of the hardware transform.
    """
    acc = ctx.mul(a[..., :, 0:1], b[..., 0:1, :])
    for k in range(1, _BLOCK):
        acc = ctx.add(acc, ctx.mul(a[..., :, k : k + 1], b[..., k : k + 1, :]))
    return acc


def run(
    config: IHWConfig | None = None,
    size: int = 64,
    quality: float = 1.0,
    image: np.ndarray | None = None,
) -> AppResult:
    """Encode + decode the image; returns the reconstructed image.

    ``quality`` scales the quantization table (higher = coarser).
    """
    if quality <= 0:
        raise ValueError(f"quality scale must be positive, got {quality}")
    ctx = make_context(config)
    if image is None:
        image = test_image(size)
    size = image.shape[0]
    if image.shape != (size, size) or size % _BLOCK:
        raise ValueError(f"image must be square with size % 8 == 0, got {image.shape}")

    basis = ctx.array(dct_basis())
    basis_t = ctx.array(dct_basis().T)
    quant = (_QUANT * quality).astype(np.float32)

    blocks = ctx.array(_blockwise(image - 128.0))
    # Forward DCT: C x B x C^T (two counted matmuls per block batch).
    coeffs = _matmul(ctx, _matmul(ctx, basis[None, :, :], blocks), basis_t)
    # Quantize / dequantize (integer rounding is host-side, as in the codec).
    quantized = np.round(np.asarray(coeffs) / quant)  # precise: host-side (quantizer)
    dequantized = ctx.array(quantized * quant)  # precise: host-side (quantizer)
    # Inverse DCT: C^T x Q x C.
    recon = _matmul(ctx, _matmul(ctx, basis_t[None, :, :], dequantized), basis)
    # precise: host-side (codec un-bias of the decoded plane)
    decoded = np.clip(_unblock(np.asarray(recon, dtype=np.float64), size) + 128.0, 0, 255)

    pixels = size * size
    return finish(
        "jpeg-dct",
        decoded,
        ctx,
        int_ops=4 * pixels,
        mem_ops=3 * pixels,
        ctrl_ops=pixels // 8,
        threads=pixels // (_BLOCK * _BLOCK),
        extras={"quant_scale": quality},
    )


def reference_run(size: int = 64, quality: float = 1.0,
                  image: np.ndarray | None = None) -> AppResult:
    """The precise codec at the same quantization level."""
    return run(None, size=size, quality=quality, image=image)
