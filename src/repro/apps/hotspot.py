"""HotSpot processor thermal simulation (Rodinia benchmark port).

HotSpot [Skadron et al., ISCA 2003] iteratively solves the die heat
equation on a grid: each cell's temperature moves toward equilibrium with
its four neighbors, the heat sink, and its own dissipated power.  The
Rodinia CUDA kernel computes, per cell and time step,

    T' = T + step/cap * ( P
                          + (T_n + T_s - 2T) / Ry
                          + (T_e + T_w - 2T) / Rx
                          + (T_amb - T)      / Rz )

The kernel is floating point add/mul dominated (the resistances are
precomputed scalars), which is why the paper reports 91.5% arithmetic power
savings and ~32% system savings with all IHW units on, at a mean absolute
error of only ~0.05 K — the iteration averages the arithmetic errors out.

The power map is a synthetic floor plan with a few high-power blocks
("hot spots"), standing in for the Rodinia input traces.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["default_power_map", "run", "reference_run"]

# Physical constants from the Rodinia HotSpot configuration.
_AMBIENT = 80.0 + 273.15  # interface temperature (K)
_INITIAL = 60.0 + 273.15
_CHIP_HEIGHT = 0.016  # m
_CHIP_WIDTH = 0.016
_T_CHIP = 0.0005  # die thickness (m)
_CAP_FACTOR = 0.5
_SPEC_HEAT = 1.75e6
_K_SI = 100.0
_MAX_PD = 3.0e6


def default_power_map(rows: int, cols: int, seed: int = 7) -> np.ndarray:
    """Synthetic floor plan power map: a few hot blocks on a cool die.

    Block power scales with cell area so the total die power (and thus the
    temperature range) is grid-size independent.
    """
    rng = np.random.default_rng(seed)
    cell_scale = (64.0 / rows) * (64.0 / cols)
    power = np.full((rows, cols), 0.5 * cell_scale, dtype=np.float32)
    n_blocks = max(2, rows // 16)
    for _ in range(n_blocks):
        r0 = rng.integers(0, max(rows - rows // 6, 1))
        c0 = rng.integers(0, max(cols - cols // 6, 1))
        h = max(rows // 8, 2)
        w = max(cols // 8, 2)
        power[r0 : r0 + h, c0 : c0 + w] = rng.uniform(4.0, 9.0) * cell_scale
    return power


def _coefficients(rows: int, cols: int):
    """Grid-dependent thermal RC constants (host-side precomputation)."""
    grid_height = _CHIP_HEIGHT / rows
    grid_width = _CHIP_WIDTH / cols
    cap = _CAP_FACTOR * _SPEC_HEAT * _T_CHIP * grid_width * grid_height
    rx = grid_width / (2.0 * _K_SI * _T_CHIP * grid_height)
    ry = grid_height / (2.0 * _K_SI * _T_CHIP * grid_width)
    rz = _T_CHIP / (_K_SI * grid_height * grid_width)
    max_slope = _MAX_PD / (_SPEC_HEAT * _T_CHIP)
    step = 0.001 / max_slope
    return {
        "step_div_cap": np.float32(step / cap),
        "rx_inv": np.float32(1.0 / rx),
        "ry_inv": np.float32(1.0 / ry),
        "rz_inv": np.float32(1.0 / rz),
    }


def _pad_edges(t: np.ndarray) -> tuple:
    """Neighbor views with edge replication (adiabatic die boundary)."""
    north = np.vstack([t[:1, :], t[:-1, :]])
    south = np.vstack([t[1:, :], t[-1:, :]])
    west = np.hstack([t[:, :1], t[:, :-1]])
    east = np.hstack([t[:, 1:], t[:, -1:]])
    return north, south, east, west


def initial_temperature(
    rows: int, cols: int, power_map: np.ndarray, settle_iterations: int = 400
) -> np.ndarray:
    """Near-steady-state temperature map (the Rodinia ``temp.dat`` input).

    Rodinia's HotSpot starts from a measured temperature trace and
    simulates a transient on top of it; this computes the equivalent by
    settling the precise update from a uniform die (host-side, precise).
    Results are memoized per (grid, power map) since precise and imprecise
    runs share the same starting trace.
    """
    key = (rows, cols, settle_iterations, power_map.tobytes())
    cached = _INITIAL_CACHE.get(key)
    if cached is not None:
        return cached.copy()
    coeff = _coefficients(rows, cols)
    temp = np.full((rows, cols), _INITIAL, dtype=np.float64)
    power = power_map.astype(np.float64)
    for _ in range(settle_iterations):
        north, south, east, west = _pad_edges(temp)
        flux = (
            power
            + (north + south - 2.0 * temp) * float(coeff["ry_inv"])
            + (east + west - 2.0 * temp) * float(coeff["rx_inv"])
            + (_AMBIENT - temp) * float(coeff["rz_inv"])
        )  # precise: host-side (settling the precise starting trace)
        temp = temp + float(coeff["step_div_cap"]) * flux  # precise: host-side
    result = temp.astype(np.float32)
    if len(_INITIAL_CACHE) > 8:
        _INITIAL_CACHE.clear()
    _INITIAL_CACHE[key] = result
    return result.copy()


# repro-lint: disable=fork-safety -- deterministic memo; identical in every process
_INITIAL_CACHE: dict = {}


def run(
    config: IHWConfig | None = None,
    rows: int = 64,
    cols: int = 64,
    iterations: int = 40,
    power_map: np.ndarray | None = None,
    use_fma: bool = False,
) -> AppResult:
    """Simulate the die temperature field and return the final grid (K).

    ``use_fma=True`` fuses the final scale-and-accumulate into the FMA unit
    (``T' = fma(step/cap, total, T)``), the form the CUDA compiler emits
    with mad contraction — an ablation of the imprecise FMA path.
    """
    if rows < 4 or cols < 4:
        raise ValueError(f"grid too small: {rows}x{cols}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    ctx = make_context(config)
    if power_map is None:
        power_map = default_power_map(rows, cols)
    if power_map.shape != (rows, cols):
        raise ValueError(
            f"power map shape {power_map.shape} does not match grid {rows}x{cols}"
        )

    coeff = _coefficients(rows, cols)
    power = ctx.array(power_map)
    temp = ctx.array(initial_temperature(rows, cols, power_map))
    ambient = np.float32(_AMBIENT)

    for _ in range(iterations):
        north, south, east, west = _pad_edges(temp)
        two_t = ctx.add(temp, temp)
        flux_y = ctx.mul(coeff["ry_inv"], ctx.sub(ctx.add(north, south), two_t))
        flux_x = ctx.mul(coeff["rx_inv"], ctx.sub(ctx.add(east, west), two_t))
        flux_z = ctx.mul(coeff["rz_inv"], ctx.sub(ambient, temp))
        total = ctx.add(ctx.add(power, flux_y), ctx.add(flux_x, flux_z))
        if use_fma:
            temp = ctx.fma(coeff["step_div_cap"], total, temp)
        else:
            temp = ctx.add(temp, ctx.mul(coeff["step_div_cap"], total))

    cells = rows * cols
    return finish(
        "hotspot",
        np.asarray(temp, dtype=np.float64),
        ctx,
        int_ops=3 * cells * iterations,  # index arithmetic
        mem_ops=2 * cells * iterations,  # shared-memory tiled: ~2 global ops
        ctrl_ops=cells * iterations // 8,
        threads=cells,
    )


def reference_run(rows: int = 64, cols: int = 64, iterations: int = 40,
                  power_map: np.ndarray | None = None) -> AppResult:
    """The precise baseline execution."""
    return run(None, rows=rows, cols=cols, iterations=iterations, power_map=power_map)
