"""Shared structure of the benchmark applications.

Every application in :mod:`repro.apps` follows the same contract: a
``run(config=..., **params)`` function executes the numerical kernel with
all floating point arithmetic routed through an instrumented
:class:`~repro.core.ArithmeticContext` and returns an :class:`AppResult`
bundling the output, the performance counters, and the context, so the
framework can compare precise and imprecise executions and feed the power
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import telemetry
from repro.core import ArithmeticContext, IHWConfig
from repro.gpu import KernelCounters

__all__ = ["AppResult", "make_context", "finish"]


@dataclass
class AppResult:
    """Output and counters of one application execution."""

    name: str
    output: Any
    counters: KernelCounters
    extras: dict | None = None

    @property
    def op_counts(self) -> dict:
        return self.counters.op_counts()

    @property
    def fp_mul_count(self) -> int:
        """Floating point multiplications executed (the Table-6 column)."""
        return self.counters.op_count("mul") + self.counters.op_count("fma")


def make_context(config: IHWConfig | None, dtype=np.float32) -> ArithmeticContext:
    """Context with the given configuration (precise when ``config`` is None).

    When telemetry is enabled (``REPRO_TELEMETRY=metrics|trace``) imprecise
    runs get a numeric-drift probe attached; the precise reference never
    does (its drift is zero by construction).
    """
    ctx = ArithmeticContext(
        config if config is not None else IHWConfig.precise(), dtype=dtype
    )
    if config is not None:
        ctx.drift_probe = telemetry.make_drift_probe()
        ctx.op_timer = telemetry.make_op_timer()
    return ctx


def finish(
    name: str,
    output,
    ctx: ArithmeticContext,
    int_ops: int = 0,
    mem_ops: int = 0,
    ctrl_ops: int = 0,
    threads: int = 0,
    extras: dict | None = None,
) -> AppResult:
    """Package a finished kernel execution into an :class:`AppResult`."""
    counters = KernelCounters.from_context(
        ctx,
        name=name,
        int_ops=int_ops,
        mem_ops=mem_ops,
        ctrl_ops=ctrl_ops,
        threads=threads,
    )
    telemetry.record_kernel(name, ctx)
    return AppResult(name=name, output=output, counters=counters, extras=extras or {})
