"""435.gromacs — molecular dynamics benchmark (SPEC2006 substitute).

SPEC's 435.gromacs simulates the protein lysozyme in water; its quality
check compares the reported average potential energy against a reference,
accepting errors within 1.25% because MD trajectories are chaotic.  This
port runs the same numerical core at laptop scale: a Lennard-Jones fluid in
reduced units under velocity-Verlet integration with minimum-image periodic
boundaries, reporting the time-averaged potential energy and temperature.

All pairwise force/energy arithmetic is double precision through the
instrumented context (multiplication dominated, Table 6), so the benchmark
measures how multiplier bias propagates through a chaotic N-body system —
the Figure-21b error-percentage study with its 1.25% acceptance line.
"""

from __future__ import annotations

import numpy as np

from repro.core import IHWConfig

from .base import AppResult, finish, make_context

__all__ = ["initial_lattice", "run", "reference_run"]


def initial_lattice(n_side: int = 4, density: float = 0.8, seed: int = 9) -> tuple:
    """FCC-ish cubic lattice positions and small random velocities."""
    if n_side < 2:
        raise ValueError(f"n_side must be >= 2, got {n_side}")
    n = n_side**3
    box = (n / density) ** (1.0 / 3.0)
    spacing = box / n_side
    grid = np.arange(n_side) * spacing
    x, y, z = np.meshgrid(grid, grid, grid, indexing="ij")
    positions = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    rng = np.random.default_rng(seed)
    velocities = rng.normal(0.0, 0.5, (n, 3))
    velocities -= velocities.mean(axis=0)  # zero net momentum
    return positions.astype(np.float64), velocities.astype(np.float64), box


def _pair_terms(ctx, positions, box):
    """LJ potential sum and per-particle forces over all pairs (counted)."""
    n = len(positions)
    iu, ju = np.triu_indices(n, k=1)
    delta = positions[iu] - positions[ju]  # precise: host-side (pair deltas)
    # Minimum image (host-side box logic, like the neighbor search).
    delta -= box * np.round(delta / box)  # precise: host-side
    dx = ctx.array(delta[:, 0])
    dy = ctx.array(delta[:, 1])
    dz = ctx.array(delta[:, 2])

    r2 = ctx.add(ctx.add(ctx.mul(dx, dx), ctx.mul(dy, dy)), ctx.mul(dz, dz))
    r2 = np.maximum(r2, np.float64(0.6)).astype(np.float64)  # overlap guard
    inv_r2 = ctx.rcp(r2)
    inv_r6 = ctx.mul(ctx.mul(inv_r2, inv_r2), inv_r2)
    inv_r12 = ctx.mul(inv_r6, inv_r6)

    pair_pot = ctx.mul(np.float64(4.0), ctx.sub(inv_r12, inv_r6))
    # f/r = 24 (2 r^-12 - r^-6) / r^2
    fscale = ctx.mul(
        ctx.mul(np.float64(24.0), ctx.sub(ctx.add(inv_r12, inv_r12), inv_r6)),
        inv_r2,
    )
    fx = ctx.mul(fscale, dx)
    fy = ctx.mul(fscale, dy)
    fz = ctx.mul(fscale, dz)

    forces = np.zeros((n, 3), dtype=np.float64)
    # Scatter-accumulate of per-pair forces onto atoms: the paper's harness
    # performs this reduction on the host, outside the imprecise units.
    np.add.at(forces[:, 0], iu, fx)  # precise: host-side
    np.add.at(forces[:, 0], ju, -fx)  # precise: host-side
    np.add.at(forces[:, 1], iu, fy)  # precise: host-side
    np.add.at(forces[:, 1], ju, -fy)  # precise: host-side
    np.add.at(forces[:, 2], iu, fz)  # precise: host-side
    np.add.at(forces[:, 2], ju, -fz)  # precise: host-side
    potential = float(np.asarray(pair_pot, dtype=np.float64).sum())
    return potential, forces


def run(
    config: IHWConfig | None = None,
    n_side: int = 3,
    steps: int = 60,
    dt: float = 0.004,
    density: float = 0.8,
) -> AppResult:
    """Integrate the fluid; output ``(avg potential energy, avg temperature)``."""
    if steps < 2:
        raise ValueError(f"steps must be >= 2, got {steps}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    ctx = make_context(config, dtype=np.float64)
    positions, velocities, box = initial_lattice(n_side, density)
    n = len(positions)

    potential, forces = _pair_terms(ctx, positions, box)
    pot_history = []
    temp_history = []
    half_dt = 0.5 * dt
    # Velocity-Verlet integration runs on the host (precise), as in the
    # paper's setup: only the pair-force kernel uses the imprecise units.
    for _ in range(steps):
        velocities = velocities + half_dt * forces  # precise: host-side
        positions = (positions + dt * velocities) % box  # precise: host-side
        potential, forces = _pair_terms(ctx, positions, box)
        velocities = velocities + half_dt * forces  # precise: host-side
        kinetic = 0.5 * float((velocities**2).sum())  # precise: host-side
        pot_history.append(potential / n)  # precise: host-side
        temp_history.append(2.0 * kinetic / (3.0 * n))

    half = len(pot_history) // 2
    avg_pot = float(np.mean(pot_history[half:]))
    avg_temp = float(np.mean(temp_history[half:]))

    pairs = n * (n - 1) // 2
    return finish(
        "435.gromacs",
        (avg_pot, avg_temp),
        ctx,
        int_ops=pairs * steps * 4,
        mem_ops=pairs * steps * 3,
        ctrl_ops=pairs * steps // 4,
        threads=n,
        extras={"particles": n, "box": box},
    )


def reference_run(n_side: int = 3, steps: int = 60, **kwargs) -> AppResult:
    """The precise baseline trajectory."""
    return run(None, n_side=n_side, steps=steps, **kwargs)
