"""Benchmark applications: the paper's GPU and CPU workloads.

GPU (single precision, Rodinia / ISPASS / Parboil ports):

- :mod:`repro.apps.hotspot` — die thermal simulation,
- :mod:`repro.apps.srad` — speckle-reducing anisotropic diffusion,
- :mod:`repro.apps.raytrace` — Whitted ray tracer,
- :mod:`repro.apps.cp` — Coulomb potential lattice.

Extension (the Figure-5 motivation, on this paper's FP units):

- :mod:`repro.apps.dct` — JPEG-style 8x8 DCT codec,
- :mod:`repro.apps.blackscholes` — option pricing (the negative control:
  the financial workload Chapter 1 scopes *out* of imprecise hardware).

CPU (double precision, SPEC substitutes):

- :mod:`repro.apps.art` — ART-2 neural network recognizer (179.art),
- :mod:`repro.apps.gromacs` — Lennard-Jones MD (435.gromacs),
- :mod:`repro.apps.sphinx` — isolated-word recognizer (482.sphinx3).
"""

from . import art, blackscholes, cp, dct, gromacs, hotspot, raytrace, sphinx, srad
from .base import AppResult

__all__ = [
    "AppResult",
    "art",
    "blackscholes",
    "cp",
    "dct",
    "gromacs",
    "hotspot",
    "raytrace",
    "sphinx",
    "srad",
]
