"""repro — reproduction of "Low Power GPGPU Computation with Imprecise Hardware".

A behavioral-model reproduction of Hang Zhang's DAC-2014 / UVa-thesis work:
imprecise floating point and special function units, their error analysis
and characterization, a 45 nm hardware PPA model, a GPU timing/power
substrate standing in for GPGPU-Sim + GPUWattch, the benchmark
applications, and the power-quality tradeoff framework that ties them
together.

Quick start::

    import numpy as np
    from repro import IHWConfig, ArithmeticContext

    ctx = ArithmeticContext(IHWConfig.all_imprecise())
    product = ctx.mul(np.float32(1.75), np.float32(1.75))  # 2.5, not 3.0625

See :mod:`repro.framework` for the end-to-end evaluation flow and
``examples/`` for runnable scenarios.
"""

from .core import (
    ArithmeticContext,
    IHWConfig,
    MultiplierConfig,
    configurable_multiply,
    imprecise_add,
    imprecise_divide,
    imprecise_fma,
    imprecise_log2,
    imprecise_multiply,
    imprecise_reciprocal,
    imprecise_rsqrt,
    imprecise_sqrt,
    imprecise_subtract,
    truncated_multiply,
)
from .framework import Evaluation, PowerQualityFramework
from .runtime import ExperimentRunner, ExperimentSpec, ResultCache, RunnerStats

__version__ = "1.0.0"

__all__ = [
    "ArithmeticContext",
    "Evaluation",
    "ExperimentRunner",
    "ExperimentSpec",
    "IHWConfig",
    "MultiplierConfig",
    "PowerQualityFramework",
    "ResultCache",
    "RunnerStats",
    "__version__",
    "configurable_multiply",
    "imprecise_add",
    "imprecise_divide",
    "imprecise_fma",
    "imprecise_log2",
    "imprecise_multiply",
    "imprecise_reciprocal",
    "imprecise_rsqrt",
    "imprecise_sqrt",
    "imprecise_subtract",
    "truncated_multiply",
]
