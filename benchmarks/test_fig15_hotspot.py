"""Figure 15 / Table 5 row 1: HotSpot with all IHW units enabled.

Paper result: no perceptible quality degradation (MAE 0.05 K, MSE 0.003)
with 32.06% system-level and 91.54% arithmetic power savings.  Shape
checks: sub-Kelvin MAE on a ~60-85 C die map, hot spots co-located with the
precise simulation, arithmetic savings near 90%, system savings in the
high-20s to low-30s driven by a ~30-35% FPU+SFU share.
"""

import numpy as np

from repro.apps import hotspot
from repro.core import IHWConfig
from repro.framework import PowerQualityFramework
from repro.quality import mae, wed

from report import emit

ROWS, COLS, ITERS = 128, 128, 40


def test_fig15_hotspot(benchmark):
    fw = PowerQualityFramework(
        run_app=lambda cfg: hotspot.run(cfg, ROWS, COLS, ITERS),
        quality_metric=mae,
    )
    ev = benchmark(fw.evaluate, IHWConfig.all_imprecise())

    ref = fw.reference.output
    imp = ev.output
    worst = wed(imp, ref)
    share = fw.reference_breakdown.arithmetic_share
    emit(
        "Figure 15 / Table 5 — HotSpot, all IHW enabled",
        [
            f"grid {ROWS}x{COLS}, {ITERS} iterations",
            f"MAE:             {ev.quality:8.3f} K   (paper: 0.05 K)",
            f"WED:             {worst:8.3f} K",
            f"temp range:      {ref.min():.1f} .. {ref.max():.1f} K",
            f"FPU+SFU share:   {share:8.1%}   (paper Fig 2: ~35%)",
            f"system savings:  {ev.savings.system_savings:8.2%}   (paper: 32.06%)",
            f"arith savings:   {ev.savings.arithmetic_savings:8.2%}   (paper: 91.54%)",
        ],
    )
    benchmark.extra_info["mae_kelvin"] = ev.quality
    benchmark.extra_info["system_savings"] = ev.savings.system_savings
    benchmark.extra_info["arith_savings"] = ev.savings.arithmetic_savings

    # Quality: errors far below the die's temperature contrast.
    assert ev.quality < 1.0
    assert worst < 0.2 * (ref.max() - ref.min()) + 1.0
    # Hot spots co-located.
    ref_hot = ref >= np.percentile(ref, 99)
    imp_hot = imp >= np.percentile(imp, 95)
    assert imp_hot[ref_hot].all()
    # Power: the Table-5 shape.
    assert 0.85 <= ev.savings.arithmetic_savings <= 0.95
    assert 0.24 <= ev.savings.system_savings <= 0.36
