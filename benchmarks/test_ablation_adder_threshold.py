"""Ablation: the adder's structural threshold TH.

DESIGN.md calls out TH as a tunable structural parameter.  Sweeping TH
over HotSpot's accumulate-small-updates kernel exposes the adder's
*absorption* behavior: an addend smaller than ``2^-TH`` of the accumulator
is dropped entirely, so near-equilibrium temperature updates (ratio
~2^-15 here) are frozen out until TH exceeds the accumulation's dynamic
range.  The application error is flat in the absorbed regime, falls
exponentially once TH crosses the update ratio (~TH 12-20), and hardware
power grows only linearly with TH all along — which is why the paper's
TH = 8 is safe for its mixed-op configurations (the multiplier and SFU
savings dominate) while pure-adder accumulation workloads want a larger
threshold.
"""

from repro.apps import hotspot
from repro.core import IHWConfig
from repro.erroranalysis import adder_addition_bound
from repro.hardware import dw_fp_adder, ihw_fp_adder
from repro.quality import mae

from report import emit

THRESHOLDS = (2, 8, 12, 16, 20, 24, 27)


def test_ablation_adder_threshold(benchmark):
    reference = hotspot.reference_run(64, 64, 30)

    def sweep():
        out = {}
        for th in THRESHOLDS:
            result = hotspot.run(
                IHWConfig.units("add", adder_threshold=th), 64, 64, 30
            )
            out[th] = mae(result.output, reference.output)
        return out

    maes = benchmark(sweep)
    dw_power = dw_fp_adder(32).metrics().power_mw

    lines = [
        f"{'TH':>3s} {'bound':>9s} {'hotspot MAE':>12s} {'adder power':>12s} {'ratio':>7s}"
    ]
    powers = {}
    for th in THRESHOLDS:
        power = ihw_fp_adder(32, th).metrics().power_mw
        powers[th] = power
        lines.append(
            f"{th:>3d} {adder_addition_bound(th):>9.4%} {maes[th]:>12.6f} "
            f"{power:>9.3f} mW {power / dw_power:>7.3f}"
        )
    emit("Ablation — adder threshold TH (HotSpot, add unit only)", lines)
    benchmark.extra_info["mae_th8"] = maes[8]
    benchmark.extra_info["mae_th20"] = maes[20]

    # Absorbed regime: TH below the accumulator/update ratio is flat —
    # the small updates vanish identically for TH = 2 and TH = 8.
    assert maes[2] == maes[8]
    # Transition: once TH crosses the update ratio the error collapses.
    assert maes[20] < 0.05 * maes[8]
    assert maes[27] <= maes[20]
    # MAE is monotone non-increasing across the sweep (up to the floor set
    # by the result-truncation noise, ~1e-7 K here).
    ordered = [maes[th] for th in THRESHOLDS]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= earlier + 1e-6
    # The absorbed error is bounded by the precise trajectory's own drift
    # (frozen state, not divergence): well under the die's contrast.
    contrast = reference.output.max() - reference.output.min()
    assert maes[2] < 0.05 * contrast
    # Power grows with TH yet even TH = 20 keeps a healthy adder saving.
    assert powers[2] < powers[8] < powers[20] < powers[27]
    assert powers[20] < 0.8 * dw_power
