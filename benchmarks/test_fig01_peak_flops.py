"""Figure 1: peak floating point throughput, CPU vs GPU.

The paper motivates GPGPU with the widening peak-GFLOPS gap between a
high-end CPU (~187 GFLOPS, Core i7 class) and NVIDIA GPUs (Fermi, then
Kepler at ~1 TFLOPS double precision).  The simulated Fermi-class machine
must land in the right decade and beat the CPU by an order of magnitude.
"""

from repro.gpu import FERMI_GTX480, GPUConfig

from report import emit

CPU_PEAK_GFLOPS = 187.0  # Intel Core i7-3900 class (paper Figure 1)
KEPLER_LIKE = GPUConfig(
    name="kepler-like", num_sms=15, fpu_lanes=192, clock_ghz=0.735
)


def test_fig01_peak_flops(benchmark):
    fermi = benchmark(FERMI_GTX480.peak_gflops)
    kepler = KEPLER_LIKE.peak_gflops()

    emit(
        "Figure 1 — peak GFLOPS, CPU vs GPU",
        [
            f"CPU (Core i7 class, paper):     {CPU_PEAK_GFLOPS:8.0f} GFLOPS",
            f"Fermi-class simulated GPU:      {fermi:8.0f} GFLOPS",
            f"Kepler-class simulated GPU:     {kepler:8.0f} GFLOPS",
            f"GPU/CPU ratio (Fermi):          {fermi / CPU_PEAK_GFLOPS:8.1f}x",
        ],
    )
    benchmark.extra_info["fermi_gflops"] = fermi
    benchmark.extra_info["kepler_gflops"] = kepler

    assert fermi > CPU_PEAK_GFLOPS * 3  # the paper's order-of-magnitude gap
    assert kepler > fermi
