"""Table 7: 482.sphinx3 quality of results — words recognized out of 25.

Paper columns: intuitive truncation (bt_44..49), full path (fp_tr0..48),
log path (lp_tr0..48).  Published shape: the full path misrecognizes at
most one word across every configuration; the log path is the weakest
(down to 21/25); intuitive truncation holds until ~49 truncated bits.
"""

from repro.apps import sphinx
from repro.core import IHWConfig
from repro.hardware import TABLE7_SPHINX
from repro.quality import word_accuracy

from report import emit


def _mitchell(name):
    return IHWConfig.units("mul").with_multiplier("mitchell", config=name)


def _bt(bits):
    return IHWConfig.units("mul").with_multiplier("truncated", truncation=bits)


CONFIGS = {
    **{f"bt_{tr}": _bt(tr) for tr in (44, 45, 46, 47, 48, 49)},
    **{f"fp_tr{tr}": _mitchell(f"fp_tr{tr}") for tr in (0, 44, 45, 46, 47, 48)},
    **{f"lp_tr{tr}": _mitchell(f"lp_tr{tr}") for tr in (0, 44, 45, 46, 47, 48)},
}


def test_table7_sphinx(benchmark):
    reference = sphinx.reference_run()
    truth = reference.extras["truth"]
    assert word_accuracy(reference.output, truth) == (25, 25)

    results = benchmark(
        lambda: {name: sphinx.run(cfg) for name, cfg in CONFIGS.items()}
    )

    scores = {
        name: word_accuracy(r.output, truth)[0] for name, r in results.items()
    }
    lines = [f"{'config':8s} {'ours':>6s} {'paper':>6s}"]
    for name, score in scores.items():
        lines.append(f"{name:8s} {score:>4d}/25 {TABLE7_SPHINX.get(name, '-'):>4}/25")
        benchmark.extra_info[f"{name}_correct"] = score
    emit("Table 7 — 482.sphinx3 words recognized", lines)

    fp_scores = [scores[n] for n in scores if n.startswith("fp")]
    lp_scores = [scores[n] for n in scores if n.startswith("lp")]
    bt_shallow = [scores[f"bt_{t}"] for t in (44, 45, 46, 47, 48)]

    # Full path: at most one miss anywhere (paper: >= 24/25).
    assert min(fp_scores) >= 24
    # Log path never beats the full path and is the weakest family.
    assert max(lp_scores) <= max(fp_scores)
    assert min(lp_scores) <= min(fp_scores)
    assert min(lp_scores) >= 20  # paper floor: 21
    # Intuitive truncation holds up at shallow depths, dips at bt_49.
    assert min(bt_shallow) >= 24
    assert scores["bt_49"] <= min(bt_shallow)
