"""Figure 8: quasi-Monte-Carlo error PMFs of the 32-bit IHW unit set.

Regenerates the per-unit probability mass functions over ceil(log2 |ERR%|)
bins.  The paper's qualitative findings checked here: the floating point
adder and log2 are dominated by frequent small-magnitude (FSM) error; the
other units pile probability toward (but never beyond) their Table-1
maxima; the adder's unbounded near-cancellation case carries negligible
probability above 8%.
"""

from repro.erroranalysis import UNIT_CHARACTERIZATIONS, characterize_unit

from report import emit

N = 1 << 17


def test_fig08_error_characterization(benchmark):
    pmfs = benchmark(
        lambda: {
            name: characterize_unit(name, N) for name in sorted(UNIT_CHARACTERIZATIONS)
        }
    )

    lines = []
    for name, pmf in pmfs.items():
        lines.append(pmf.format_rows())
        lines.append("")
        benchmark.extra_info[f"{name}_dominant_bin"] = pmf.dominant_bin()
    emit("Figure 8 — error PMFs of the 32-bit IHW units", lines)

    # FSM units: dominant mass below the 1% bin.
    assert pmfs["ifpadd"].dominant_bin() <= 0
    assert pmfs["ilog2"].dominant_bin() <= 0
    # Bounded units cluster toward larger magnitudes instead.
    assert pmfs["ifpmul"].dominant_bin() >= 3
    assert pmfs["irsqrt"].dominant_bin() >= 2
    # Near-cancellation blowups are vanishingly rare (paper's observation).
    assert pmfs["ifpadd"].probability_above(8.0) < 0.01
    # Every unit errs on essentially every input (truncation designs).
    for name in ("ifpmul", "ircp", "irsqrt"):
        assert pmfs[name].error_rate > 0.95
