"""Figures 10-11: the functional-verification step of the methodology.

The paper's flow verifies the C++ functional models against VHDL hardware
models through simulation before importing them into GPGPU-Sim.  This
bench runs that co-simulation for every datapath with an independent
HDL-level integer implementation: binary32 units must match bit for bit;
the binary64 Mitchell paths (whose behavioral model evaluates in float64)
must stay within 1 ULP of the integer reference.
"""

from repro.core import MultiplierConfig
from repro.hdl import cosimulate

from report import emit

N = 3000

FP32_UNITS = [
    ("table1_mul", {}),
    ("threshold_add", {"threshold": 3}),
    ("threshold_add", {"threshold": 8}),
    ("threshold_add", {"threshold": 27}),
    ("mitchell_mul", {"config": MultiplierConfig("log", 0)}),
    ("mitchell_mul", {"config": MultiplierConfig("full", 0)}),
    ("mitchell_mul", {"config": MultiplierConfig("log", 19)}),
    ("mitchell_mul", {"config": MultiplierConfig("full", 15)}),
]

#: Fixed-point SFU datapaths: quantized constants cost at most 1 ULP
#: against the float64 behavioral coefficients.
FP32_SFU_UNITS = [
    ("linear_rcp", {}),
    ("linear_rsqrt", {}),
]

FP64_UNITS = [
    ("table1_mul", {}, 0),
    ("threshold_add", {"threshold": 8}, 0),
    ("mitchell_mul", {"config": MultiplierConfig("log", 0)}, 1),
    ("mitchell_mul", {"config": MultiplierConfig("full", 0)}, 1),
    ("mitchell_mul", {"config": MultiplierConfig("log", 48)}, 1),
]


def test_fig10_11_verification(benchmark):
    def run_all():
        results = []
        for unit, kwargs in FP32_UNITS:
            results.append((cosimulate(unit, 32, n_random=N, **kwargs), 0))
        for unit, kwargs in FP32_SFU_UNITS:
            results.append((cosimulate(unit, 32, n_random=N, **kwargs), 1))
        for unit, kwargs, tol in FP64_UNITS:
            results.append((cosimulate(unit, 64, n_random=N // 3, **kwargs), tol))
        return results

    results = benchmark(run_all)

    lines = [r.summary() + f"  (tolerance {tol} ulp)" for r, tol in results]
    emit("Figures 10-11 — functional verification (behavioral vs HDL-level)", lines)
    benchmark.extra_info["total_vectors"] = sum(r.vectors for r, _ in results)

    for result, tolerance in results:
        assert result.within(tolerance), result.summary()
    # Every binary32 integer datapath is bit-exact.
    fp32_exact = [r for r, tol in results if "[32b" in r.unit and tol == 0]
    assert all(r.passed for r in fp32_exact)
