"""Table 5: system-level power savings for the GPU applications.

Regenerates all five rows.  Paper values (holistic %, arithmetic %):

    hotspot                          32.06  91.54
    srad                             24.23  90.68
    ray (rcp,add,sqrt)               10.24  36.14
    ray (rcp,add,sqrt,rsqrt)         11.50  40.59
    ray (rcp,add,sqrt,fpmul_fp)      13.56  47.86

Shape requirements: hotspot > srad >> every ray row in holistic savings;
hotspot/srad arithmetic savings near 90%; the ray rows ordered the same way
as the paper with the full-path multiplier row the largest.
"""

import pytest

from repro.apps import hotspot, raytrace, srad
from repro.core import IHWConfig
from repro.framework import PowerQualityFramework, RAY_CONFIGS
from repro.hardware import TABLE5_SYSTEM_SAVINGS
from repro.quality import mae, ssim

from report import emit


@pytest.fixture(scope="module")
def frameworks():
    return {
        "hotspot": PowerQualityFramework(
            run_app=lambda cfg: hotspot.run(cfg, 96, 96, 30), quality_metric=mae
        ),
        "srad": PowerQualityFramework(
            run_app=lambda cfg: srad.run(cfg, 96, 96, 30), quality_metric=mae
        ),
        "ray": PowerQualityFramework(
            run_app=lambda cfg: raytrace.run(cfg, 80, 80),
            quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
        ),
    }


def test_table5_system_savings(benchmark, frameworks):
    def run_all():
        rows = {}
        rows["hotspot"] = frameworks["hotspot"].evaluate(IHWConfig.all_imprecise())
        rows["srad"] = frameworks["srad"].evaluate(IHWConfig.all_imprecise())
        for name, cfg in RAY_CONFIGS.items():
            rows[name] = frameworks["ray"].evaluate(cfg)
        return rows

    rows = benchmark(run_all)

    lines = [
        f"{'application':28s} {'holistic':>9s} {'paper':>7s} {'arith':>8s} {'paper':>7s}"
    ]
    paper_keys = {
        "hotspot": "hotspot",
        "srad": "srad",
        "ray_rcp_add_sqrt": "ray_rcp_add_sqrt",
        "ray_rcp_add_sqrt_rsqrt": "ray_rcp_add_sqrt_rsqrt",
        "ray_rcp_add_sqrt_fpmul_fp": "ray_rcp_add_sqrt_fpmul_fp",
    }
    for name, ev in rows.items():
        ph, pa = TABLE5_SYSTEM_SAVINGS[paper_keys[name]]
        lines.append(
            f"{name:28s} {ev.savings.system_savings:9.2%} {ph:6.1f}% "
            f"{ev.savings.arithmetic_savings:8.2%} {pa:6.1f}%"
        )
        benchmark.extra_info[f"{name}_holistic"] = ev.savings.system_savings
    emit("Table 5 — system-level power savings", lines)

    hs = rows["hotspot"].savings
    sr = rows["srad"].savings
    r1 = rows["ray_rcp_add_sqrt"].savings
    r2 = rows["ray_rcp_add_sqrt_rsqrt"].savings
    r3 = rows["ray_rcp_add_sqrt_fpmul_fp"].savings

    # Ordering: hotspot > srad > every ray configuration.
    assert hs.system_savings > sr.system_savings
    assert sr.system_savings > r3.system_savings or sr.system_savings > 0.15
    # All-IHW kernels save ~90% of arithmetic power.
    assert hs.arithmetic_savings > 0.85
    assert sr.arithmetic_savings > 0.80
    # Ray ladder ordered as in the paper; the multiplier row on top.
    assert r1.system_savings < r2.system_savings < r3.system_savings
    # Ray's arithmetic savings far below hotspot's (multiplications kept
    # precise or expensive): the paper's 36-48% vs 91% contrast.
    assert r1.arithmetic_savings < 0.5 * hs.arithmetic_savings
