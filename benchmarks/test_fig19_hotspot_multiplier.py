"""Figure 19: HotSpot under the accuracy-configurable multiplier.

The paper replaces only the kernel's FP multiplications and sweeps the
configuration space: the 26x-reduction log-path point (lp_tr19) produces a
MAE around 1.2 K, while intuitive 22-bit truncation has ~8x larger MAE at
only ~6x power reduction.  Shape requirements: the proposed multiplier's
MAE is far below intuitive truncation at matched (or deeper) power
reduction, and MAE grows monotonically with truncation.
"""

from repro.apps import hotspot
from repro.core import IHWConfig
from repro.hardware import HardwareLibrary
from repro.quality import mae, wed

from report import emit

ROWS = COLS = 64
ITERS = 40


def _mitchell(name):
    return IHWConfig.units("mul").with_multiplier("mitchell", config=name)


def _bt(bits):
    return IHWConfig.units("mul").with_multiplier("truncated", truncation=bits)


def test_fig19_hotspot_multiplier(benchmark):
    reference = hotspot.reference_run(ROWS, COLS, ITERS)
    configs = {
        "fp_tr0": _mitchell("fp_tr0"),
        "fp_tr15": _mitchell("fp_tr15"),
        "lp_tr0": _mitchell("lp_tr0"),
        "lp_tr15": _mitchell("lp_tr15"),
        "lp_tr19": _mitchell("lp_tr19"),
        "bt_15": _bt(15),
        "bt_19": _bt(19),
        "bt_22": _bt(22),
    }

    def sweep():
        return {
            name: hotspot.run(cfg, ROWS, COLS, ITERS) for name, cfg in configs.items()
        }

    results = benchmark(sweep)
    lib = HardwareLibrary.paper_45nm()

    lines = [f"{'config':8s} {'MAE (K)':>9s} {'WED (K)':>9s} {'power reduction':>16s}"]
    metrics = {}
    for name, result in results.items():
        m = mae(result.output, reference.output)
        w = wed(result.output, reference.output)
        reduction = lib.dwip("mul").power_mw / lib.ihw("mul", configs[name]).power_mw
        metrics[name] = (m, reduction)
        lines.append(f"{name:8s} {m:9.4f} {w:9.4f} {reduction:15.1f}x")
        benchmark.extra_info[f"{name}_mae"] = m
    emit("Figure 19 — HotSpot power-quality with the configurable multiplier", lines)

    # lp_tr19: deep power reduction with MAE around a Kelvin (paper 1.2 K).
    assert metrics["lp_tr19"][0] < 4.0
    assert metrics["lp_tr19"][1] >= 20
    # Intuitive truncation: far worse MAE at far less reduction (paper 8x
    # worse at 6x reduction).
    assert metrics["bt_22"][0] > 1.5 * metrics["lp_tr19"][0]
    assert metrics["bt_22"][1] < 0.4 * metrics["lp_tr19"][1]
    # MAE monotone in truncation on the log path.
    assert metrics["lp_tr0"][0] <= metrics["lp_tr15"][0] <= metrics["lp_tr19"][0]
    # Full path beats log path at matched truncation.
    assert metrics["fp_tr15"][0] < metrics["lp_tr15"][0]
