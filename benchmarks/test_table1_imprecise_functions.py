"""Table 1: maximum error magnitudes of the imprecise functions.

Verifies each proposed imprecise function against its published eps_max
over large quasi-Monte-Carlo input sweeps: reciprocal 5.88%, inverse square
root and square root 11.11%, multiplication 25%, division 5.88%, and the
unbounded-but-benign adder/log2 cases.
"""

import numpy as np

from repro.erroranalysis import characterize_unit

from report import emit

N = 1 << 17

PAPER_EPS_MAX = {
    "ircp": ("5.88%", 0.0591),
    "irsqrt": ("11.11%", 0.1120),
    "isqrt": ("11.11%", 0.1120),
    "ifpdiv": ("5.88%", 0.0600),
    "ifpmul": ("25%", 0.2501),
    "ilog2": ("unbounded", None),
    "ifpadd": ("unbounded", None),
    "ifma": ("unbounded", None),
}


def test_table1_imprecise_functions(benchmark):
    pmfs = benchmark(
        lambda: {name: characterize_unit(name, N) for name in PAPER_EPS_MAX}
    )

    lines = [f"{'function':8s} {'paper eps_max':>14s} {'measured eps_max':>17s}"]
    for name, (paper, bound) in PAPER_EPS_MAX.items():
        measured = pmfs[name].stats.eps_max
        lines.append(f"{name:8s} {paper:>14s} {measured:>16.4%}")
        benchmark.extra_info[f"{name}_eps_max"] = measured
        if bound is not None:
            assert measured <= bound, f"{name} exceeded its Table-1 bound"
    emit("Table 1 — imprecise function maximum errors", lines)

    # The bounded units actually approach their bounds (tight analysis).
    assert pmfs["ifpmul"].stats.eps_max > 0.20
    assert pmfs["ircp"].stats.eps_max > 0.045
    assert pmfs["irsqrt"].stats.eps_max > 0.09
    # The adder's unbounded case stays rare and small in absolute terms.
    assert pmfs["ifpadd"].probability_above(8.0) < 0.01
