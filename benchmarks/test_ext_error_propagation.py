"""Extension: analytic error propagation vs Monte-Carlo measurement.

The error-modeling framework the paper's characterization builds on
(reference [13]) is implemented as a propagation calculus; this bench
validates its predictions against Monte-Carlo on the paper's kernel shapes
and shows the payoff: configuration-space questions ("how deep can I
truncate before the dot product error passes 5%?") answered in
microseconds instead of full simulations.
"""

import numpy as np

from repro.core import ArithmeticContext, IHWConfig
from repro.erroranalysis import Propagator, mantissa_inputs

from report import emit

N = 100_000


def _measure_dot(config, width, n=N):
    ctx = ArithmeticContext(config)
    vectors = mantissa_inputs(n, 2 * width, seed=21)
    acc = ctx.mul(vectors[0], vectors[1])
    exact = vectors[0].astype(np.float64) * vectors[1].astype(np.float64)
    for i in range(1, width):
        acc = ctx.add(acc, ctx.mul(vectors[2 * i], vectors[2 * i + 1]))
        exact = exact + vectors[2 * i].astype(np.float64) * vectors[
            2 * i + 1
        ].astype(np.float64)
    rel = (acc.astype(np.float64) - exact) / exact
    return float(np.abs(rel).mean())


def _predict_dot(config, width):
    prop = Propagator(config)
    terms = [prop.mul(prop.quantity(1.0), prop.quantity(1.0)) for _ in range(width)]
    return prop.accumulate(terms).error.expected_magnitude()


def test_ext_error_propagation(benchmark):
    configs = {
        "table1 mul+add": IHWConfig.units("mul", "add"),
        "fp_tr0 mul+add": IHWConfig.units("add").with_multiplier(
            "mitchell", config="fp_tr0"
        ),
        "lp_tr15 mul+add": IHWConfig.units("add").with_multiplier(
            "mitchell", config="lp_tr15"
        ),
    }
    width = 8

    def run_all():
        return {
            name: (_predict_dot(cfg, width), _measure_dot(cfg, width))
            for name, cfg in configs.items()
        }

    results = benchmark(run_all)

    lines = [f"{'configuration':18s} {'predicted E|err|':>17s} {'measured':>9s} {'ratio':>6s}"]
    for name, (pred, meas) in results.items():
        lines.append(f"{name:18s} {pred:17.4%} {meas:9.4%} {pred / meas:6.2f}")
        benchmark.extra_info[f"{name}_ratio"] = pred / meas
    emit("Extension — analytic error propagation (8-wide dot product)", lines)

    for name, (pred, meas) in results.items():
        # Predictions within ~40% of Monte-Carlo across configurations.
        assert 0.6 <= pred / meas <= 1.6, name
    # The calculus preserves the configuration ordering.
    ordered = sorted(results, key=lambda n: results[n][0])
    measured_order = sorted(results, key=lambda n: results[n][1])
    assert ordered == measured_order
