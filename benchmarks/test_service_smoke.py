"""Sweep service smoke: real ``repro serve`` + ``repro call`` round trip.

Exercises the shipped CLI surface end to end the way an operator would:
start a service subprocess on an ephemeral port, query it cold (computed
through the work queue) and warm (served from the content-addressed
cache), check the Prometheus cache-hit counters, and gate the warm-hit
overhead: the p50 warm HTTP round trip must sit within 10 ms of a
direct in-process cache read of the same entry.  Numbers land in
``BENCH_service.json`` so successive PRs can track the serving overhead.
"""

import json
import os
import re
import statistics
import subprocess
import sys
import time

from repro.core import IHWConfig
from repro.runtime import ExperimentSpec, ResultCache
from repro.service import ServiceClient

from report import emit, format_row, write_bench_json

SPEC = ExperimentSpec.create("hotspot", metric="mae",
                             rows=8, cols=8, iterations=2)
CALL_ARGS = ["hotspot", "--configs", "precise|all",
             "--rows", "8", "--iterations", "2"]
CONFIGS = {"precise": IHWConfig.precise(), "all": IHWConfig.all_imprecise()}
WARM_GATE_SECONDS = 0.010  # p50 warm HTTP overhead over a direct read


def _repro(*argv, env=None, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=timeout,
        env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
    )


def _start_server(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_TELEMETRY"] = "metrics"
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"serve did not announce a URL: {line!r}")
    return process, match.group(1)


def test_service_smoke(tmp_path):
    cache_dir = tmp_path / "cache"
    process, url = _start_server(cache_dir)
    env = dict(os.environ, PYTHONPATH="src")
    try:
        # Cold: both configurations computed through the queue.
        cold_json = tmp_path / "cold.json"
        cold = _repro("call", *CALL_ARGS, "--url", url,
                      "--json", str(cold_json), env=env)
        assert cold.returncode == 0, cold.stderr
        cold_doc = json.loads(cold_json.read_text())
        assert cold_doc["served"] == {"hits": 0, "misses": 2, "errors": 0}

        # Warm: identical query, entirely cache-served, p50 over repeats.
        warm_json = tmp_path / "warm.json"
        warm = _repro("call", *CALL_ARGS, "--url", url,
                      "--repeats", "9", "--json", str(warm_json), env=env)
        assert warm.returncode == 0, warm.stderr
        warm_doc = json.loads(warm_json.read_text())
        assert warm_doc["served"] == {"hits": 2, "misses": 0, "errors": 0}
        assert warm_doc["results"] == cold_doc["results"]
        warm_p50 = warm_doc["latency_p50_seconds"]

        # The server accounted the hits in its Prometheus surface.
        metrics = ServiceClient(url).metricsz()
        hit_line = next(
            line for line in metrics.splitlines()
            if line.startswith("repro_service_cache_outcomes_total")
            and 'outcome="hit"' in line
        )
        assert float(hit_line.rsplit(" ", 1)[1]) >= 18  # 9 repeats x 2

        # Direct read baseline: the same entries straight off disk.
        cache = ResultCache(cache_dir)
        direct = []
        for _ in range(9):
            start = time.perf_counter()
            for config in CONFIGS.values():
                assert cache.document(SPEC, config) is not None
            direct.append(time.perf_counter() - start)
        direct_p50 = statistics.median(direct)
    finally:
        process.terminate()
        process.wait(timeout=10)

    overhead = warm_p50 - direct_p50
    payload = {
        "warm_call_p50_s": round(warm_p50, 5),
        "direct_read_p50_s": round(direct_p50, 5),
        "serving_overhead_p50_s": round(overhead, 5),
        "gate_s": WARM_GATE_SECONDS,
    }
    path = write_bench_json("service", payload)
    emit("Service: warm-hit serving overhead (2-config HotSpot call)", [
        format_row("path", "p50 ms", widths=[26, 10]),
        format_row("direct cache read", f"{direct_p50 * 1e3:.2f}",
                   widths=[26, 10]),
        format_row("warm HTTP call", f"{warm_p50 * 1e3:.2f}",
                   widths=[26, 10]),
        f"overhead: {overhead * 1e3:.2f} ms "
        f"(gate: {WARM_GATE_SECONDS * 1e3:.0f} ms)",
        f"written: {path}",
    ])

    assert overhead < WARM_GATE_SECONDS, (
        f"warm-hit p50 {warm_p50 * 1e3:.2f} ms exceeds direct read "
        f"{direct_p50 * 1e3:.2f} ms by more than "
        f"{WARM_GATE_SECONDS * 1e3:.0f} ms"
    )
