"""Figure 21: the double precision CPU studies — 179.art and 435.gromacs.

(a) 179.art: vigilance (confidence of match) versus configuration.  Paper:
    intuitive truncation drops abruptly as bits are truncated, while the
    configurable multiplier degrades on a slow slope and keeps confidence
    above 0.8 at its 26x-class power reduction.

(b) 435.gromacs: average-potential-energy error % versus configuration
    against SPEC's 1.25% acceptance line.  Paper: the configurable
    multiplier's points mostly sit below the line; the study also notes the
    log path can beat the full path "counter-intuitively" because MD is
    chaotic — so only aggregate shapes are asserted here.
"""

import numpy as np

from repro.apps import art, gromacs
from repro.core import IHWConfig
from repro.quality import error_percent

from report import emit

SPEC_TOLERANCE = 1.25  # percent


def _mitchell(name):
    return IHWConfig.units("mul").with_multiplier("mitchell", config=name)


def _bt(bits):
    return IHWConfig.units("mul").with_multiplier("truncated", truncation=bits)


def test_fig21a_art_vigilance(benchmark):
    reference = art.reference_run()
    configs = {
        "fp_tr0": _mitchell("fp_tr0"),
        "fp_tr44": _mitchell("fp_tr44"),
        "fp_tr48": _mitchell("fp_tr48"),
        "lp_tr44": _mitchell("lp_tr44"),
        "lp_tr48": _mitchell("lp_tr48"),
        "bt_44": _bt(44),
        "bt_47": _bt(47),
        "bt_49": _bt(49),
        "bt_50": _bt(50),
    }
    results = benchmark(
        lambda: {name: art.run(cfg) for name, cfg in configs.items()}
    )

    lines = [f"precise vigilance: {reference.output[2]:.4f}"]
    vigilance = {}
    for name, result in results.items():
        obj, _loc, v = result.output
        vigilance[name] = v
        lines.append(f"{name:8s} vigilance={v:7.4f}  recognized={obj}")
        benchmark.extra_info[f"{name}_vigilance"] = v
    emit("Figure 21(a) — 179.art vigilance vs configuration", lines)

    # Configurable multiplier: slow slope, > 0.8 even at deep truncation.
    for name in ("fp_tr44", "fp_tr48", "lp_tr48"):
        assert vigilance[name] > 0.8
        assert results[name].output[0] == "helicopter"
    # Intuitive truncation: abrupt drop at deep truncation.
    assert vigilance["bt_50"] < vigilance["bt_44"] - 0.1
    assert vigilance["fp_tr48"] > vigilance["bt_49"]


def test_fig21b_gromacs_error(benchmark):
    reference = gromacs.reference_run()
    configs = {
        "fp_tr0": _mitchell("fp_tr0"),
        "fp_tr40": _mitchell("fp_tr40"),
        "fp_tr44": _mitchell("fp_tr44"),
        "lp_tr40": _mitchell("lp_tr40"),
        "lp_tr44": _mitchell("lp_tr44"),
        "lp_tr48": _mitchell("lp_tr48"),
        "bt_40": _bt(40),
        "bt_44": _bt(44),
        "bt_47": _bt(47),
        "bt_49": _bt(49),
    }
    results = benchmark(
        lambda: {name: gromacs.run(cfg) for name, cfg in configs.items()}
    )

    errors = {
        name: error_percent(r.output[0], reference.output[0])
        for name, r in results.items()
    }
    lines = [f"SPEC acceptance line: {SPEC_TOLERANCE}%"]
    for name, err in errors.items():
        flag = "PASS" if err < SPEC_TOLERANCE else "FAIL"
        lines.append(f"{name:8s} err={err:7.3f}%  {flag}")
        benchmark.extra_info[f"{name}_err_pct"] = err
    emit("Figure 21(b) — 435.gromacs error% vs configuration", lines)

    # Most configurable-multiplier points pass the SPEC line.
    mitchell_errs = [errors[n] for n in configs if not n.startswith("bt")]
    assert np.mean([e < SPEC_TOLERANCE for e in mitchell_errs]) >= 0.5
    # Moderate configurations are comfortably within tolerance.
    assert errors["fp_tr40"] < SPEC_TOLERANCE
    # Deep intuitive truncation fails badly.
    assert errors["bt_49"] > SPEC_TOLERANCE
    assert errors["bt_49"] > errors["bt_40"]
