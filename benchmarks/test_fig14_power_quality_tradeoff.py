"""Figure 14: the multiplier's power-quality tradeoff design space.

For single and double precision, sweeps truncation across the log path, the
full path, and the intuitive bit-truncation baseline, pairing each
configuration's measured maximum error (quasi-MC) with its power reduction
from the structural model.  Shape requirements from the paper:

- log path fp32 reaches >25x reduction near 19 truncated bits at ~18% error,
- fp64 log path reaches a larger factor (paper: 49x at 48 bits, ~18%),
- intuitive truncation is far from Pareto-optimal: at comparable error its
  reduction stays in single digits.
"""

import numpy as np

from repro.core import MultiplierConfig
from repro.erroranalysis import characterize_multiplier_config
from repro.hardware import bt_fp_multiplier, dw_fp_multiplier, mitchell_fp_multiplier

from report import emit

N = 1 << 15


def _sweep(bits, path, truncations):
    dw_power = dw_fp_multiplier(bits).metrics().power_mw
    dtype = np.float32 if bits == 32 else np.float64
    rows = []
    for tr in truncations:
        cfg = MultiplierConfig(path, tr)
        power = mitchell_fp_multiplier(bits, cfg).metrics().power_mw
        pmf = characterize_multiplier_config(cfg, N, dtype=dtype)
        rows.append((cfg.name, dw_power / power, pmf.stats.eps_max))
    return rows


def _sweep_bt(bits, truncations):
    dw_power = dw_fp_multiplier(bits).metrics().power_mw
    dtype = np.float32 if bits == 32 else np.float64
    rows = []
    for tr in truncations:
        power = bt_fp_multiplier(bits, tr).metrics().power_mw
        pmf = characterize_multiplier_config(f"bt_{tr}", N, dtype=dtype)
        rows.append((f"bt_{tr}", dw_power / power, pmf.stats.eps_max))
    return rows


def test_fig14a_single_precision(benchmark):
    def sweep():
        return (
            _sweep(32, "log", [0, 5, 10, 15, 19]),
            _sweep(32, "full", [0, 10, 19]),
            _sweep_bt(32, [10, 15, 19, 21]),
        )

    log_rows, full_rows, bt_rows = benchmark(sweep)
    lines = [f"{'config':10s} {'reduction':>10s} {'eps_max':>9s}"]
    for name, red, eps in log_rows + full_rows + bt_rows:
        lines.append(f"{name:10s} {red:9.1f}x {eps:9.2%}")
    emit("Figure 14(a) — 32-bit power-quality tradeoff", lines)

    lp19 = dict((n, (r, e)) for n, r, e in log_rows)["lp_tr19"]
    bt21 = dict((n, (r, e)) for n, r, e in bt_rows)["bt_21"]
    benchmark.extra_info["lp_tr19_reduction"] = lp19[0]
    # Paper: >25x at ~18% error for lp_tr19.
    assert lp19[0] >= 20
    assert 0.12 <= lp19[1] <= 0.20
    # Paper: intuitive truncation only single-digit reduction near 21% error.
    assert bt21[0] <= 8
    # Pareto dominance of the proposed design at matched error levels.
    assert lp19[0] > 3 * bt21[0]
    # Reduction grows monotonically with truncation on both paths.
    reductions = [r for _, r, _ in log_rows]
    assert reductions == sorted(reductions)


def test_fig14b_double_precision(benchmark):
    def sweep():
        return (
            _sweep(64, "log", [0, 24, 40, 48]),
            _sweep_bt(64, [40, 48]),
        )

    log_rows, bt_rows = benchmark(sweep)
    lines = [f"{'config':10s} {'reduction':>10s} {'eps_max':>9s}"]
    for name, red, eps in log_rows + bt_rows:
        lines.append(f"{name:10s} {red:9.1f}x {eps:9.2%}")
    emit("Figure 14(b) — 64-bit power-quality tradeoff", lines)

    lp48 = dict((n, (r, e)) for n, r, e in log_rows)["lp_tr48"]
    benchmark.extra_info["lp_tr48_reduction"] = lp48[0]
    # Paper: 49x at ~18.07% error; our structural model gives a larger
    # factor (the 53x53 array grows quadratically) with the same error.
    assert lp48[0] >= 40
    assert 0.12 <= lp48[1] <= 0.20
    # Double precision factor exceeds the single precision one (paper: 26 -> 49).
    fp32_rows = _sweep(32, "log", [19])
    assert lp48[0] > fp32_rows[0][1]
