"""Figure 9: error PMFs of the accuracy-configurable FP multiplier.

Regenerates the characterization of the log-path and full-path
configurations under several truncation depths.  Checked shape properties:
truncation shifts the probability mass rightward but the maximum stays
below the analytic bound; the visible jump the paper calls out between 18
and 19 truncated bits (log path) appears as a dominant-bin shift; the full
path sits well left of the log path at equal truncation.
"""

from repro.erroranalysis import characterize_multiplier_config

from report import emit

N = 1 << 17

CONFIGS = (
    "fp_tr0", "fp_tr15", "fp_tr19",
    "lp_tr0", "lp_tr15", "lp_tr17", "lp_tr18", "lp_tr19",
)


def test_fig09_multiplier_characterization(benchmark):
    pmfs = benchmark(
        lambda: {c: characterize_multiplier_config(c, N) for c in CONFIGS}
    )

    lines = []
    for name, pmf in pmfs.items():
        lines.append(
            f"{name:8s} eps_max={pmf.stats.eps_max:7.3%} "
            f"eps_mean={pmf.stats.eps_mean:7.3%} dominant bin 2^{pmf.dominant_bin()}%"
        )
        benchmark.extra_info[f"{name}_eps_max"] = pmf.stats.eps_max
    emit("Figure 9 — configurable multiplier error PMFs", lines)

    # Truncation moves mass right (never past the bound).
    assert pmfs["lp_tr19"].dominant_bin() >= pmfs["lp_tr0"].dominant_bin()
    assert pmfs["fp_tr19"].dominant_bin() >= pmfs["fp_tr0"].dominant_bin()
    # The paper's 18 -> 19 bit step is where the top bin moves.
    assert pmfs["lp_tr19"].dominant_bin() >= pmfs["lp_tr17"].dominant_bin()
    # Full path is far more accurate than log path at equal truncation.
    assert pmfs["fp_tr0"].stats.eps_max < 0.25 * pmfs["lp_tr0"].stats.eps_max
    assert pmfs["fp_tr15"].stats.eps_mean < pmfs["lp_tr15"].stats.eps_mean
    # Published anchors: lp_tr19 ~18% max error; fp_tr0 2.04%; lp_tr0 11.1%.
    assert 0.12 <= pmfs["lp_tr19"].stats.eps_max <= 0.20
    assert pmfs["fp_tr0"].stats.eps_max <= 1 / 49 + 1e-6
    assert pmfs["lp_tr0"].stats.eps_max <= 1 / 9 + 1e-6
