"""Table 3: the mantissa-datapath swap — 25-bit adder vs 24x24 multiplier.

The Table-1 multiplier's savings come from replacing the mantissa
multiplication array with a single wide adder; Table 3 quantifies the gap:
0.24 vs 8.50 mW (~35x power) and 0.31 vs 0.93 ns (~3x delay) in 45 nm.
The gate-level model is calibrated on exactly these two blocks, so this
bench doubles as the calibration audit.
"""

from repro.hardware import TABLE3_INTEGER_UNITS, adder, array_multiplier

from report import emit


def test_table3_adder_vs_multiplier(benchmark):
    add_blk, mult_blk = benchmark(lambda: (adder(25), array_multiplier(24)))

    paper_add = TABLE3_INTEGER_UNITS["add25"]
    paper_mult = TABLE3_INTEGER_UNITS["mult24"]
    emit(
        "Table 3 — 25-bit adder vs 24x24-bit multiplier",
        [
            f"{'unit':12s} {'paper mW':>9s} {'model mW':>9s} {'paper ns':>9s} {'model ns':>9s}",
            f"{'25b adder':12s} {paper_add.power_mw:9.2f} {add_blk.power_mw:9.3f} "
            f"{paper_add.latency_ns:9.2f} {add_blk.delay_ns:9.3f}",
            f"{'24b mult':12s} {paper_mult.power_mw:9.2f} {mult_blk.power_mw:9.3f} "
            f"{paper_mult.latency_ns:9.2f} {mult_blk.delay_ns:9.3f}",
            f"power ratio: paper {paper_mult.power_mw / paper_add.power_mw:.1f}x, "
            f"model {mult_blk.power_mw / add_blk.power_mw:.1f}x",
            f"delay ratio: paper {paper_mult.latency_ns / paper_add.latency_ns:.1f}x, "
            f"model {mult_blk.delay_ns / add_blk.delay_ns:.1f}x",
        ],
    )
    benchmark.extra_info["power_ratio"] = mult_blk.power_mw / add_blk.power_mw

    assert abs(add_blk.power_mw - paper_add.power_mw) / paper_add.power_mw < 0.10
    assert abs(mult_blk.power_mw - paper_mult.power_mw) / paper_mult.power_mw < 0.10
    assert abs(add_blk.delay_ns - paper_add.latency_ns) / paper_add.latency_ns < 0.10
    assert abs(mult_blk.delay_ns - paper_mult.latency_ns) / paper_mult.latency_ns < 0.10
    assert 30 <= mult_blk.power_mw / add_blk.power_mw <= 40
