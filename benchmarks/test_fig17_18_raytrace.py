"""Figures 17-18 / Table 5 rows 3-5: the RayTracing quality ladder.

The application study's centerpiece: ray tracing is the multiplication-
sensitive workload.  Paper ladder (SSIM @ system savings):

- rcp, add, sqrt                          -> 0.95 @ 10.24%
- rcp, add, sqrt, rsqrt                   -> 0.83 @ 11.50%
- rcp, add, sqrt + Table-1 multiplier     -> image destroyed
- rcp, add, sqrt + full-path multiplier   -> 0.85 @ 13.56%
- rcp, add, sqrt + full-path, 15-bit trunc-> 0.79 @ 15.37%

Shape requirements: the same quality ordering, the Table-1 multiplier far
below the full-path multiplier, and savings increasing down the ladder.
"""

import pytest

from repro.apps import raytrace
from repro.core import IHWConfig
from repro.framework import PowerQualityFramework
from repro.quality import ssim

from report import emit

SIZE = 96

LADDER = {
    "rcp,add,sqrt": (IHWConfig.units("rcp", "add", "sqrt"), 0.95),
    "rcp,add,sqrt,rsqrt": (IHWConfig.units("rcp", "add", "sqrt", "rsqrt"), 0.83),
    "+table1 mul": (IHWConfig.units("rcp", "add", "sqrt", "mul"), None),
    "+fp_tr0 mul": (
        IHWConfig.units("rcp", "add", "sqrt").with_multiplier("mitchell", config="fp_tr0"),
        0.85,
    ),
    "+fp_tr15 mul": (
        IHWConfig.units("rcp", "add", "sqrt").with_multiplier("mitchell", config="fp_tr15"),
        0.79,
    ),
}


@pytest.fixture(scope="module")
def framework():
    return PowerQualityFramework(
        run_app=lambda cfg: raytrace.run(cfg, SIZE, SIZE),
        quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
    )


def test_fig17_18_raytrace_ladder(benchmark, framework):
    results = benchmark(
        lambda: {name: framework.evaluate(cfg) for name, (cfg, _) in LADDER.items()}
    )

    lines = [f"{'configuration':22s} {'SSIM':>6s} {'paper':>6s} {'savings':>8s}"]
    for name, ev in results.items():
        paper = LADDER[name][1]
        lines.append(
            f"{name:22s} {ev.quality:6.3f} {paper if paper else 'ruin':>6} "
            f"{ev.savings.system_savings:8.2%}"
        )
        benchmark.extra_info[f"{name}_ssim"] = ev.quality
    emit("Figures 17-18 / Table 5 — RayTracing ladder", lines)

    mild = results["rcp,add,sqrt"]
    rsq = results["rcp,add,sqrt,rsqrt"]
    table1 = results["+table1 mul"]
    full = results["+fp_tr0 mul"]
    tr15 = results["+fp_tr15 mul"]

    # Quality ordering (Figure 17-18).
    assert mild.quality > 0.9  # paper 0.95
    assert rsq.quality < mild.quality  # rsqrt costs structure
    assert table1.quality < full.quality - 0.15  # Table-1 mul destroys
    assert full.quality > 0.75  # paper 0.85
    assert tr15.quality < full.quality + 0.02  # truncation trades a bit more
    # Savings ordering (Table 5): each added unit buys more power.
    assert mild.savings.system_savings < rsq.savings.system_savings
    assert rsq.savings.system_savings < full.savings.system_savings
    assert full.savings.system_savings <= tr15.savings.system_savings + 1e-9
    # Ray tracing saves far less than HotSpot/SRAD at acceptable quality —
    # the paper's error-compounding point.
    assert full.savings.arithmetic_savings < 0.95
