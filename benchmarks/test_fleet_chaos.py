"""Fleet chaos smoke: three ``repro serve`` nodes, one killed mid-sweep.

Exercises the shipped resilience surface end to end the way an operator
outage would: node C (sharing node A's cache store) admits a sweep it
never finishes — an injected ``node-crash`` fault kills the process
mid-batch, exactly as a power cut would, leaving orphaned admits in its
queue journal.  A fleet ``repro call`` across all three members then
routes around the dead node and must produce results bit-identical to a
clean single-node run on a fresh cache.  Finally the killed node is
restarted on its old cache dir: journal replay must find every orphan
already computed on the shared store and recompute **zero**
configurations.  Numbers land in ``BENCH_fleet_chaos.json``.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.service import QueueJournal, ServiceClient

from report import emit, format_row, write_bench_json

# Heavy enough that the batch is still executing when the crash lands
# (~0.4 s per imprecise configuration), light enough for a smoke job.
CALL_ARGS = ["hotspot", "--configs", "precise|add|all",
             "--rows", "64", "--iterations", "100"]
CRASH_EXIT_CODE = 91  # repro.faults.injector.CRASH_EXIT_CODE
ROOT = os.path.dirname(os.path.dirname(__file__))


def _repro(*argv, timeout=300):
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_FAULTS", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=timeout,
        env=env, cwd=ROOT,
    )


def _start_server(cache_dir, *extra, faults=None):
    import re

    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--cache-dir", str(cache_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=ROOT,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"serve did not announce a URL: {line!r}")
    return process, match.group(1)


def test_fleet_chaos(tmp_path):
    started = time.perf_counter()
    a_proc, a_url = _start_server(tmp_path / "a")
    b_proc, b_url = _start_server(tmp_path / "b", "--remote-cache", a_url)
    c_proc, c_url = _start_server(tmp_path / "c", "--remote-cache", a_url,
                                  faults="node-crash:match=?boom,times=1")
    procs = [a_proc, b_proc, c_proc]
    try:
        # 1. C admits a full sweep it will never deliver: the client
        #    gives up after 0.3 s while the batch is still computing.
        stranded = _repro("call", *CALL_ARGS, "--url", c_url,
                          "--timeout", "0.3", "--retries", "0")
        assert stranded.returncode == 1, stranded.stderr

        # 2. Kill the node mid-batch (no cleanup, no goodbye).
        try:
            urllib.request.urlopen(f"{c_url}/healthz?boom", timeout=10)
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        assert c_proc.wait(timeout=15) == CRASH_EXIT_CODE
        journal_path = tmp_path / "c" / "manifests" / "queue.journal"
        orphans = QueueJournal(journal_path).replay()
        assert orphans, "the killed node left no journaled orphans"

        # 3. A fleet call across all three members (one dead) must
        #    succeed, routed entirely around the crashed node.
        fleet_json = tmp_path / "fleet.json"
        fleet = _repro("call", *CALL_ARGS,
                       "--fleet", ",".join((a_url, b_url, c_url)),
                       "--timeout", "120", "--json", str(fleet_json))
        assert fleet.returncode == 0, fleet.stderr
        fleet_doc = json.loads(fleet_json.read_text())
        assert fleet_doc["served"]["errors"] == 0
        c_netloc = c_url.split("//", 1)[1]
        placed_on = set(fleet_doc["fleet"]["placement"].values())
        assert c_netloc not in placed_on

        # 4. Bit-identity: a clean single-node run on a fresh cache
        #    produces byte-for-byte the same result documents.
        g_proc, g_url = _start_server(tmp_path / "ground")
        procs.append(g_proc)
        gt_json = tmp_path / "ground.json"
        ground = _repro("call", *CALL_ARGS, "--url", g_url,
                        "--json", str(gt_json))
        assert ground.returncode == 0, ground.stderr
        gt_doc = json.loads(gt_json.read_text())
        assert fleet_doc["results"] == gt_doc["results"]

        # 5. Restart the killed node on its old cache dir: every orphan
        #    is already on the shared store, so replay recomputes zero
        #    configurations.
        c2_proc, c2_url = _start_server(tmp_path / "c",
                                        "--remote-cache", a_url)
        procs.append(c2_proc)
        client = ServiceClient(c2_url)
        recovered = client.readyz()["recovered"]
        assert recovered["requeued"] == 0
        assert recovered["invalid"] == 0
        assert recovered["complete"] == len(orphans)
        assert client.queuez()["executions"] == 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    elapsed = time.perf_counter() - started
    payload = {
        "orphans_at_crash": len(orphans),
        "replayed_complete": recovered["complete"],
        "replayed_requeued": recovered["requeued"],
        "recomputed_executions": 0,
        "fleet_members_placed_on": len(placed_on),
        "wall_seconds": round(elapsed, 2),
    }
    path = write_bench_json("fleet_chaos", payload)
    emit("Fleet chaos: 3 nodes, one killed mid-sweep (HotSpot 64x64)", [
        format_row("stage", "outcome", widths=[30, 24]),
        format_row("orphans journaled at crash", str(len(orphans)),
                   widths=[30, 24]),
        format_row("fleet result vs single node", "bit-identical",
                   widths=[30, 24]),
        format_row("replay: complete / requeued",
                   f"{recovered['complete']} / {recovered['requeued']}",
                   widths=[30, 24]),
        f"wall: {elapsed:.1f} s",
        f"written: {path}",
    ])
