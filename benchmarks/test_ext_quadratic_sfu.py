"""Extension: quadratic-approximation SFUs (future-work design point).

The paper chose one-shot linear approximations for maximal power savings
and names quadratic approximations as the accurate-but-expensive
alternative.  This bench adds that point to the design space: on the
rsqrt-sensitive RayTracing configuration, the quadratic SFUs recover most
of the lost SSIM while still costing an order of magnitude less power than
the Newton-Raphson DWIP units.
"""

from repro.apps import raytrace
from repro.core import IHWConfig
from repro.hardware import dw_rsqrt, ihw_rsqrt, quadratic_sfu
from repro.quality import ssim

from report import emit

SIZE = 80


def test_ext_quadratic_sfu(benchmark):
    reference = raytrace.reference_run(SIZE, SIZE)
    linear_cfg = IHWConfig.units("rcp", "add", "sqrt", "rsqrt")
    quad_cfg = linear_cfg.with_sfu_mode("quadratic")

    def run_pair():
        return (
            raytrace.run(linear_cfg, SIZE, SIZE),
            raytrace.run(quad_cfg, SIZE, SIZE),
        )

    linear, quadratic = benchmark(run_pair)

    s_lin = ssim(linear.output, reference.output, data_range=1.0)
    s_quad = ssim(quadratic.output, reference.output, data_range=1.0)
    p_lin = ihw_rsqrt(32).metrics().power_mw
    p_quad = quadratic_sfu(32).metrics().power_mw
    p_dw = dw_rsqrt(32).metrics().power_mw
    emit(
        "Extension — linear vs quadratic SFUs (RayTracing, rcp+add+sqrt+rsqrt)",
        [
            f"{'SFU mode':12s} {'SSIM':>7s} {'rsqrt power':>12s} {'vs DWIP':>8s}",
            f"{'linear':12s} {s_lin:7.3f} {p_lin:9.3f} mW {p_dw / p_lin:7.1f}x",
            f"{'quadratic':12s} {s_quad:7.3f} {p_quad:9.3f} mW {p_dw / p_quad:7.1f}x",
            f"{'precise':12s} {1.0:7.3f} {p_dw:9.3f} mW {1.0:7.1f}x",
        ],
    )
    benchmark.extra_info["ssim_linear"] = s_lin
    benchmark.extra_info["ssim_quadratic"] = s_quad

    # The quadratic point recovers most of the rsqrt quality loss...
    assert s_quad > s_lin + 0.1
    assert s_quad > 0.9
    # ... at an intermediate power cost that still beats DWIP by >5x.
    assert p_lin < p_quad < p_dw
    assert p_dw / p_quad > 5
