"""Table 2 / Figure 13: normalized non-functional metrics of the IHW units.

Two sources are reported side by side: the paper's published HSIM
measurements (carried as reference data) and the independent structural
gate-level model, which must land every power/latency ratio in the same
qualitative band — most notably ifpmul near 25x power reduction and isqrt
as the one unit whose power is *worse* than DWIP while EDP still wins.
"""

from repro.hardware import HardwareLibrary, TABLE2_NORMALIZED

from report import emit

#: op name per Table-2 row.
ROW_OPS = {
    "ifpadd": "add",
    "ifpmul": "mul",
    "ifpdiv": "div",
    "ircp": "rcp",
    "isqrt": "sqrt",
    "ilog2": "log2",
    "ifma": "fma",
    "irsqrt": "rsqrt",
}


def test_table2_nonfunctional_metrics(benchmark):
    analytic = benchmark(HardwareLibrary.analytic)
    paper = HardwareLibrary.paper_45nm()

    lines = [
        f"{'unit':8s} {'paper P':>8s} {'model P':>8s} {'paper L':>8s} {'model L':>8s}"
    ]
    for row, op in ROW_OPS.items():
        ref = TABLE2_NORMALIZED[row]
        p_ratio = analytic.ihw(op).power_mw / analytic.dwip(op).power_mw
        l_ratio = analytic.ihw(op).latency_ns / analytic.dwip(op).latency_ns
        lines.append(
            f"{row:8s} {ref.power_mw:8.3f} {p_ratio:8.3f} "
            f"{ref.latency_ns:8.3f} {l_ratio:8.3f}"
        )
        benchmark.extra_info[f"{row}_power_ratio"] = p_ratio
        # Band check: the structural model within ~3x of the published ratio
        # (same order of magnitude, same winner).
        assert p_ratio <= max(3.0 * ref.power_mw, ref.power_mw + 0.4)
        assert p_ratio >= ref.power_mw / 4.0
    emit("Table 2 / Figure 13 — normalized non-functional metrics", lines)

    # Headline checks on both sources.
    assert paper.power_reduction("mul") > 20  # 25x published
    model_mul = analytic.power_reduction("mul")
    assert 12 <= model_mul <= 50
    # isqrt: power near or above parity, EDP still better.
    isqrt_p = analytic.ihw("sqrt").power_mw / analytic.dwip("sqrt").power_mw
    assert isqrt_p > 0.5
    assert analytic.ihw("sqrt").edp < analytic.dwip("sqrt").edp


def test_fig13_all_units_latency_not_worse(benchmark):
    analytic = benchmark(HardwareLibrary.analytic)
    lines = []
    for row, op in ROW_OPS.items():
        l_ratio = analytic.ihw(op).latency_ns / analytic.dwip(op).latency_ns
        e_ratio = analytic.ihw(op).energy_pj / analytic.dwip(op).energy_pj
        lines.append(f"{row:8s} latency ratio {l_ratio:6.3f}  energy ratio {e_ratio:6.3f}")
        assert l_ratio <= 1.1
    emit("Figure 13 — latency/energy ratios (structural model)", lines)
