"""Extension: the Figure-5 JPEG motivation on this paper's FP units.

The paper's Figure 5 shows prior work's imprecise *integer* adder in a JPEG
decompression pipeline with negligible quality loss.  This bench replays
the experiment with the reproduced floating point units in an 8x8 DCT
codec: the full-path Mitchell multiplier keeps the arithmetic error below
the codec's own quantization loss (PSNR vs the precise codec far above the
codec's PSNR vs the original), while the Table-1 multiplier and deep
intuitive truncation visibly damage the image.
"""

import numpy as np

from repro.apps import dct
from repro.core import IHWConfig
from repro.hardware import HardwareLibrary
from repro.quality import psnr

from report import emit

SIZE = 64


def test_ext_fig5_dct(benchmark):
    reference = dct.reference_run(SIZE)
    original = dct.test_image(SIZE).astype(np.float64)
    codec_psnr = psnr(reference.output, original, data_range=255)

    configs = {
        "table1 mul+add": IHWConfig.units("mul", "add"),
        "fp_tr0 +add": IHWConfig.units("add").with_multiplier(
            "mitchell", config="fp_tr0"
        ),
        "fp_tr15 +add": IHWConfig.units("add").with_multiplier(
            "mitchell", config="fp_tr15"
        ),
        "bt_19 +add": IHWConfig.units("add").with_multiplier(
            "truncated", truncation=19
        ),
    }

    def run_all():
        return {name: dct.run(cfg, SIZE) for name, cfg in configs.items()}

    results = benchmark(run_all)
    lib = HardwareLibrary.paper_45nm()

    lines = [f"codec PSNR vs original (quantization loss): {codec_psnr:.1f} dB"]
    scores = {}
    for name, result in results.items():
        p = psnr(result.output, reference.output, data_range=255)
        red = lib.dwip("mul").power_mw / lib.ihw("mul", configs[name]).power_mw
        scores[name] = p
        lines.append(f"{name:16s} PSNR vs precise codec {p:6.2f} dB  "
                     f"mul reduction {red:5.1f}x")
        benchmark.extra_info[f"{name}_psnr"] = p
    emit("Extension — Figure-5 JPEG/DCT study with FP units", lines)

    # The full-path multiplier's arithmetic noise hides under the codec's
    # own quantization loss (the Figure-5 'negligible quality loss' story).
    assert scores["fp_tr0 +add"] > codec_psnr + 3
    assert scores["fp_tr15 +add"] > codec_psnr + 3
    # The crude configurations visibly damage the image.
    assert scores["table1 mul+add"] < codec_psnr - 5
    assert scores["bt_19 +add"] < scores["fp_tr15 +add"] - 8
