"""Figure 20: CP (Coulomb potential) power-quality tradeoff.

The paper sweeps the multiplier configurations over the ion-placement
kernel (with ~20% of multiplications kept precise for coordinates) and
finds the proposed multiplier "has a consistently lower MAE and larger
power reduction across all configurations" than intuitive truncation.
"""

from repro.apps import cp
from repro.core import IHWConfig
from repro.hardware import HardwareLibrary
from repro.quality import mae, wed

from report import emit

GRID = 64


def _mitchell(name):
    return IHWConfig.units("mul").with_multiplier("mitchell", config=name)


def _bt(bits):
    return IHWConfig.units("mul").with_multiplier("truncated", truncation=bits)


def test_fig20_cp(benchmark):
    reference = cp.reference_run(grid=GRID)
    configs = {
        "fp_tr0": _mitchell("fp_tr0"),
        "fp_tr10": _mitchell("fp_tr10"),
        "fp_tr15": _mitchell("fp_tr15"),
        "lp_tr15": _mitchell("lp_tr15"),
        "lp_tr19": _mitchell("lp_tr19"),
        "bt_15": _bt(15),
        "bt_19": _bt(19),
        "bt_21": _bt(21),
    }

    results = benchmark(
        lambda: {name: cp.run(cfg, grid=GRID) for name, cfg in configs.items()}
    )
    lib = HardwareLibrary.paper_45nm()

    lines = [f"{'config':8s} {'MAE':>10s} {'WED':>10s} {'reduction':>10s}"]
    metrics = {}
    for name, result in results.items():
        m = mae(result.output, reference.output)
        w = wed(result.output, reference.output)
        red = lib.dwip("mul").power_mw / lib.ihw("mul", configs[name]).power_mw
        metrics[name] = (m, red)
        lines.append(f"{name:8s} {m:10.5f} {w:10.5f} {red:9.1f}x")
        benchmark.extra_info[f"{name}_mae"] = m
    emit("Figure 20 — CP power-quality tradeoff", lines)

    # Pareto dominance wherever the baseline tries to save real power: at
    # every bt point beyond the shallowest, some proposed configuration has
    # both lower MAE and a larger reduction.
    assert metrics["fp_tr15"][0] < metrics["bt_19"][0]
    assert metrics["fp_tr15"][1] > metrics["bt_19"][1]
    assert metrics["lp_tr19"][0] < metrics["bt_21"][0]
    assert metrics["lp_tr19"][1] > metrics["bt_21"][1]
    # The baseline cannot reach deep reductions at all (Figure 14's point).
    best_bt_reduction = max(metrics[n][1] for n in metrics if n.startswith("bt"))
    assert metrics["lp_tr19"][1] > 3 * best_bt_reduction
    # MAE grows with truncation within a path.
    assert metrics["fp_tr0"][0] <= metrics["fp_tr10"][0] <= metrics["fp_tr15"][0]
    # The ~20% precise coordinate muls keep even deep configs sane:
    # MAE stays below ~20% of the field's dynamic range.
    field_range = reference.output.max() - reference.output.min()
    assert metrics["lp_tr19"][0] < 0.2 * field_range
