"""Ablation: occupancy (resident warps) and latency hiding in the simulator.

The GPGPU-Sim-substitute must show the first-order behavior GPU power
studies depend on: memory latency is hidden by warp parallelism, so IPC —
and with it the dynamic/static power balance — rises with occupancy until
the issue width or a unit port saturates.  This bench sweeps resident
warps on a memory-mixed kernel and checks the saturation curve, plus the
knock-on effect on the Figure-2 arithmetic power share.
"""

from repro.apps import hotspot
from repro.core import IHWConfig
from repro.gpu import (
    FERMI_GTX480,
    GPUPowerModel,
    OpClass,
    profile_kernel_stalls,
    simulate_kernel,
    simulate_sm_window,
)

from report import emit

MIX = {OpClass.FPU: 50, OpClass.MEM: 6, OpClass.ALU: 6, OpClass.CTRL: 2}
WARP_COUNTS = (1, 2, 4, 8, 16, 32, 48)


def test_ablation_latency_hiding(benchmark):
    def sweep():
        out = {}
        for warps in WARP_COUNTS:
            cycles, issued = simulate_sm_window(
                MIX, FERMI_GTX480, resident_warps=warps, window=64
            )
            out[warps] = issued / cycles
        return out

    ipc = benchmark(sweep)

    lines = [f"{'warps':>6s} {'IPC':>7s}"]
    for warps, value in ipc.items():
        lines.append(f"{warps:>6d} {value:7.3f} {'#' * int(round(value * 25))}")
    emit("Ablation — latency hiding vs resident warps", lines)
    benchmark.extra_info["ipc_1"] = ipc[1]
    benchmark.extra_info["ipc_48"] = ipc[48]

    # IPC rises monotonically (up to scheduler noise) and saturates.
    values = [ipc[w] for w in WARP_COUNTS]
    for earlier, later in zip(values, values[1:]):
        assert later >= earlier - 0.02
    assert ipc[48] > 3 * ipc[1]  # parallelism hides the memory latency
    assert ipc[48] <= FERMI_GTX480.issue_width  # bounded by issue
    # Diminishing returns: per-warp IPC gain collapses as the FPU port
    # saturates (the occupancy knee GPU tuning guides describe).
    early_slope = (ipc[2] - ipc[1]) / 1
    late_slope = (ipc[48] - ipc[32]) / 16
    assert late_slope < 0.3 * early_slope


def test_ablation_occupancy_power_coupling(benchmark):
    """Occupancy feeds the power balance: fewer threads -> slower kernel
    -> lower dynamic share -> lower FPU+SFU share for the same mix."""

    def run_pair():
        full = hotspot.run(IHWConfig.precise(), 64, 64, 20)
        model = GPUPowerModel()
        bd_full = model.breakdown(full.counters)

        starved = full.counters
        starved = type(starved)(
            name="hotspot-starved",
            arith=dict(starved.arith),
            int_ops=starved.int_ops,
            mem_ops=starved.mem_ops,
            ctrl_ops=starved.ctrl_ops,
            threads=64,  # two warps: no latency hiding
        )
        bd_starved = model.breakdown(starved)
        return bd_full, bd_starved

    bd_full, bd_starved = benchmark(run_pair)
    emit(
        "Ablation — occupancy vs power balance (HotSpot mix)",
        [
            f"full occupancy:    arith share {bd_full.arithmetic_share:6.1%}, "
            f"total {bd_full.total_w:5.1f} W",
            f"2 resident warps:  arith share {bd_starved.arithmetic_share:6.1%}, "
            f"total {bd_starved.total_w:5.1f} W",
        ],
    )
    benchmark.extra_info["share_full"] = bd_full.arithmetic_share

    assert bd_starved.timing.ipc_per_sm < bd_full.timing.ipc_per_sm
    assert bd_starved.arithmetic_share < bd_full.arithmetic_share
    assert bd_starved.total_w < bd_full.total_w  # static-dominated when slow
