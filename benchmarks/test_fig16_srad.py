"""Figure 16 / Table 5 row 2: SRAD with all IHW units enabled.

Paper result: the imprecise segmentation quality matches the precise one
(Pratt FOM 0.20 precise vs 0.23 imprecise — the arithmetic noise is dwarfed
by the speckle), with 24.23% system and 90.68% arithmetic power savings.
"""

from repro.apps import srad
from repro.core import IHWConfig
from repro.framework import PowerQualityFramework
from repro.quality import pratt_fom

from report import emit

ROWS = COLS = 96
ITERS = 40


def _fom(output, _reference):
    return pratt_fom(srad.detect_edges(output), srad.ideal_edges(ROWS, COLS))


def test_fig16_srad(benchmark):
    fw = PowerQualityFramework(
        run_app=lambda cfg: srad.run(cfg, ROWS, COLS, ITERS),
        quality_metric=_fom,
    )
    ev = benchmark(fw.evaluate, IHWConfig.all_imprecise())

    ideal = srad.ideal_edges(ROWS, COLS)
    noisy, _ = srad.speckle_phantom(ROWS, COLS)
    fom_noisy = pratt_fom(srad.detect_edges(noisy), ideal)
    fom_precise = pratt_fom(srad.detect_edges(fw.reference.output), ideal)
    share = fw.reference_breakdown.arithmetic_share
    emit(
        "Figure 16 / Table 5 — SRAD, all IHW enabled",
        [
            f"phantom {ROWS}x{COLS}, {ITERS} iterations",
            f"FOM (raw speckle):   {fom_noisy:6.3f}",
            f"FOM (precise SRAD):  {fom_precise:6.3f}   (paper: 0.20)",
            f"FOM (imprecise):     {ev.quality:6.3f}   (paper: 0.23)",
            f"FPU+SFU share:       {share:6.1%}   (paper Fig 2: ~27%)",
            f"system savings:      {ev.savings.system_savings:6.2%}   (paper: 24.23%)",
            f"arith savings:       {ev.savings.arithmetic_savings:6.2%}   (paper: 90.68%)",
        ],
    )
    benchmark.extra_info["fom_imprecise"] = ev.quality
    benchmark.extra_info["system_savings"] = ev.savings.system_savings

    # Quality: imprecise segmentation within noise of the precise one
    # (the paper's imprecise FOM is actually slightly *better*).
    assert abs(ev.quality - fom_precise) < 0.1
    assert ev.quality > fom_noisy  # diffusion still does its job
    # Power: Table-5 shape — slightly below HotSpot's savings.
    assert 0.8 <= ev.savings.arithmetic_savings <= 0.95
    assert 0.17 <= ev.savings.system_savings <= 0.30
