"""Ablation: quasi-Monte-Carlo vs pseudo-random characterization.

Chapter 4.2 motivates the low-discrepancy (quasi-MC) sweep: pseudo-random
sampling "would result in an extremely large sample space ... and
producing biased results".  This bench quantifies the claim on the
multiplier's mean-error estimate: across seeds, the Sobol estimate at a
small sample budget scatters far less around the large-sample truth than
the pseudo-random estimate.
"""

import numpy as np

from repro.core import MultiplierConfig, configurable_multiply

from report import emit

N_SMALL = 4096
N_REFERENCE = 1 << 18
SEEDS = range(12)
CFG = MultiplierConfig("log", 0)


def _mean_error(a, b):
    exact = a.astype(np.float64) * b.astype(np.float64)
    approx = configurable_multiply(a, b, CFG).astype(np.float64)
    return float(np.abs((approx - exact) / exact).mean())


def _sobol_estimate(n, seed):
    from repro.erroranalysis import mantissa_inputs

    a, b = mantissa_inputs(n, 2, seed=seed)
    return _mean_error(a, b)


def _pseudo_estimate(n, seed):
    rng = np.random.default_rng(seed)
    a = (rng.uniform(1, 2, n) * np.exp2(rng.integers(-4, 5, n))).astype(np.float32)
    b = (rng.uniform(1, 2, n) * np.exp2(rng.integers(-4, 5, n))).astype(np.float32)
    return _mean_error(a, b)


def test_ablation_quasi_vs_pseudo(benchmark):
    reference = _sobol_estimate(N_REFERENCE, 0)

    def collect():
        sobol = [_sobol_estimate(N_SMALL, s) for s in SEEDS]
        pseudo = [_pseudo_estimate(N_SMALL, s) for s in SEEDS]
        return sobol, pseudo

    sobol, pseudo = benchmark(collect)
    sobol_rmse = float(np.sqrt(np.mean([(v - reference) ** 2 for v in sobol])))
    pseudo_rmse = float(np.sqrt(np.mean([(v - reference) ** 2 for v in pseudo])))

    emit(
        "Ablation — quasi-MC vs pseudo-random characterization",
        [
            f"reference mean error ({N_REFERENCE} samples): {reference:.5%}",
            f"Sobol  @ {N_SMALL}: rmse across seeds = {sobol_rmse:.3e}",
            f"pseudo @ {N_SMALL}: rmse across seeds = {pseudo_rmse:.3e}",
            f"variance-reduction factor: {pseudo_rmse / max(sobol_rmse, 1e-30):.1f}x",
        ],
    )
    benchmark.extra_info["reduction_factor"] = pseudo_rmse / max(sobol_rmse, 1e-30)

    # The low-discrepancy sweep converges meaningfully faster.
    assert sobol_rmse < pseudo_rmse
    # Both estimate the same quantity.
    assert abs(np.mean(sobol) - reference) < 0.01
    assert abs(np.mean(pseudo) - reference) < 0.01
