"""Table 6: CPU and GPU benchmark summary.

Regenerates the benchmark census: platform, precision, floating point
multiplication counts, and the fraction of multiplications routed through
the accuracy-configurable multiplier.  Absolute counts scale with our
laptop-size inputs (the paper ran full SPEC/Rodinia inputs), so the checked
shape is the *fractions* column and the mul-dominance ordering.
"""

from repro.apps import art, cp, gromacs, hotspot, raytrace, sphinx, srad
from repro.core import IHWConfig
from repro.hardware import TABLE6_BENCHMARKS

from report import emit


def _mul_stats(result):
    c = result.counters
    total = c.op_count("mul")
    precise = c.precise_count("mul")
    return total, (total - precise) / total if total else 0.0


def test_table6_benchmark_summary(benchmark):
    cfg = IHWConfig.units("mul")

    def run_all():
        return {
            "hotspot": hotspot.run(cfg, 64, 64, 30),
            "cp": cp.run(cfg, grid=48),
            "raytracing": raytrace.run(cfg, 64, 64),
            "179.art": art.run(cfg),
            "435.gromacs": gromacs.run(cfg),
            "482.sphinx": sphinx.run(cfg),
        }

    results = benchmark(run_all)

    lines = [
        f"{'benchmark':14s} {'platform':>8s} {'precision':>10s} {'FP muls':>10s} "
        f"{'imprecise%':>11s} {'paper%':>7s}"
    ]
    for name, result in results.items():
        muls, fraction = _mul_stats(result)
        platform, precision, paper_muls, paper_frac, _metric = TABLE6_BENCHMARKS[name]
        lines.append(
            f"{name:14s} {platform:>8s} {precision:>10s} {muls:>10,d} "
            f"{fraction:>10.0%} {paper_frac:>6.0%}"
        )
        benchmark.extra_info[f"{name}_mul_fraction"] = fraction
    lines.append("(srad runs entirely imprecise in the Table-5 study)")
    emit("Table 6 — benchmark summary", lines)

    # CP pins ~20% of its multiplications precise (coordinate computation).
    _, cp_frac = _mul_stats(results["cp"])
    assert 0.65 <= cp_frac <= 0.85
    # Every other benchmark routes essentially all multiplications.
    for name in ("hotspot", "179.art", "435.gromacs", "482.sphinx"):
        _, frac = _mul_stats(results[name])
        assert frac > 0.95
    # Mul counts are nonzero everywhere and the CPU benchmarks dominate.
    assert all(_mul_stats(r)[0] > 0 for r in results.values())
