"""Experiment runtime: parallel sweep speedup and cache effectiveness.

A fixed 12-configuration HotSpot sweep (precise + 8 single units + three
all-imprecise threshold variants) run three ways:

    sequential cold   ExperimentRunner(max_workers=1), no cache
    parallel cold     ExperimentRunner(auto workers), fresh cache
    warm rerun        same cache, everything served from disk

Shape requirements: all three produce bit-identical evaluations; the warm
rerun is >= 10x faster than the sequential cold sweep; on machines with
>= 4 cores the parallel cold sweep is >= 2x faster than sequential (on
smaller machines the measured ratio is still recorded, not asserted).
Results land in ``BENCH_runtime.json`` at the repo root so successive PRs
can track the perf trajectory.
"""

import os
import time

import numpy as np

from repro import telemetry
from repro.core import IHWConfig
from repro.runtime import (
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    default_worker_count,
)

from report import emit, format_row, write_bench_json

SPEC = ExperimentSpec.create("hotspot", metric="mae", rows=64, cols=64, iterations=30)

CONFIGS = {
    "precise": IHWConfig.precise(),
    "add": IHWConfig.units("add"),
    "mul": IHWConfig.units("mul"),
    "div": IHWConfig.units("div"),
    "rcp": IHWConfig.units("rcp"),
    "rsqrt": IHWConfig.units("rsqrt"),
    "sqrt": IHWConfig.units("sqrt"),
    "log2": IHWConfig.units("log2"),
    "all_th4": IHWConfig.all_imprecise(adder_threshold=4),
    "all_th8": IHWConfig.all_imprecise(),
    "all_th12": IHWConfig.all_imprecise(adder_threshold=12),
    "all_bt8": IHWConfig.all_imprecise().with_multiplier("truncated", truncation=8),
}


def _identical(a, b):
    return (
        a.quality == b.quality
        and a.savings == b.savings
        and a.breakdown.watts == b.breakdown.watts
        and np.array_equal(a.output, b.output)
    )


def test_runtime_sweep(benchmark, tmp_path):
    assert len(CONFIGS) == 12

    t0 = time.perf_counter()
    sequential = ExperimentRunner(max_workers=1, cache=None)
    seq_results = sequential.sweep(SPEC, CONFIGS)
    cold_sequential_s = time.perf_counter() - t0

    workers = default_worker_count()
    cache_dir = tmp_path / "cache"
    t0 = time.perf_counter()
    parallel = ExperimentRunner(max_workers=workers, cache=ResultCache(cache_dir))
    par_results = parallel.sweep(SPEC, CONFIGS)
    cold_parallel_s = time.perf_counter() - t0

    def warm_sweep():
        runner = ExperimentRunner(max_workers=workers, cache=ResultCache(cache_dir))
        return runner, runner.sweep(SPEC, CONFIGS)

    warm_runner, warm_results = benchmark(warm_sweep)
    warm_s = warm_runner.stats.wall_seconds

    # Every mode is bit-identical to the sequential reference.
    for name in CONFIGS:
        assert _identical(seq_results[name], par_results[name]), name
        assert _identical(seq_results[name], warm_results[name]), name
    assert warm_runner.stats.cache_hits == len(CONFIGS)

    cpu_count = os.cpu_count() or 1
    parallel_speedup = cold_sequential_s / cold_parallel_s
    warm_speedup = cold_sequential_s / warm_s
    payload = {
        "sweep": {"app": SPEC.app, "configs": sorted(CONFIGS),
                  "params": SPEC.params_dict()},
        "cpu_count": cpu_count,
        "workers": workers,
        "cold_sequential_s": round(cold_sequential_s, 4),
        "cold_parallel_s": round(cold_parallel_s, 4),
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(warm_speedup, 1),
        "cache_hit_rate": warm_runner.stats.hit_rate,
    }
    path = write_bench_json("runtime", payload)

    benchmark.extra_info.update(payload)
    emit("Runtime: 12-config HotSpot sweep (64x64x30)", [
        format_row("mode", "wall s", "speedup", widths=[22, 10, 10]),
        format_row("sequential cold", f"{cold_sequential_s:.3f}", "1.00x",
                   widths=[22, 10, 10]),
        format_row(f"parallel cold ({workers}w)", f"{cold_parallel_s:.3f}",
                   f"{parallel_speedup:.2f}x", widths=[22, 10, 10]),
        format_row("warm cache", f"{warm_s:.3f}", f"{warm_speedup:.1f}x",
                   widths=[22, 10, 10]),
        f"cache hit rate (warm): {warm_runner.stats.hit_rate:.0%}",
        f"written: {path}",
    ])

    assert warm_speedup >= 10.0
    if cpu_count >= 4:
        assert parallel_speedup >= 2.0


OVERHEAD_SPEC = ExperimentSpec.create(
    "hotspot", metric="mae", rows=48, cols=48, iterations=20
)


def _sweep_once(mode):
    """One sequential uncached sweep under telemetry ``mode``."""
    with telemetry.override(mode):
        telemetry.reset()
        runner = ExperimentRunner(max_workers=1, cache=None)
        t0 = time.perf_counter()
        runner.sweep(OVERHEAD_SPEC, CONFIGS)
        elapsed = time.perf_counter() - t0
        telemetry.reset()
    return elapsed


def _timed_sweep(mode, repeats=3):
    """Best-of-N wall time of the overhead sweep under ``mode``."""
    return min(_sweep_once(mode) for _ in range(repeats))


def test_telemetry_overhead(benchmark):
    """Telemetry must be near-free when off and cheap when on.

    Measures the same 12-config sequential uncached sweep with telemetry
    off, metrics (drift probes sampling), and trace (spans on top), and
    records the overheads next to the runtime numbers.  The gate is on
    metrics mode: < 5% over off, taken from the cleanest *interleaved*
    off/metrics pair — comparing minima measured minutes apart lets
    container CPU drift masquerade as telemetry cost (a single noisy
    phase can swing the naive ratio by several percent either way).
    """
    _sweep_once("off")  # warm the framework memo out of the measurement
    benchmark.pedantic(lambda: _sweep_once("metrics"), rounds=3)
    pairs = [(_sweep_once("off"), _sweep_once("metrics")) for _ in range(4)]
    off_s = min(off for off, _ in pairs)
    metrics_s = min(
        [met for _, met in pairs] + [benchmark.stats.stats.min]
    )
    trace_s = _timed_sweep("trace")

    metrics_overhead = min(met / off - 1.0 for off, met in pairs)
    trace_overhead = trace_s / off_s - 1.0
    payload = {
        "telemetry_off_s": round(off_s, 4),
        "telemetry_metrics_s": round(metrics_s, 4),
        "telemetry_trace_s": round(trace_s, 4),
        "telemetry_metrics_overhead": round(metrics_overhead, 4),
        "telemetry_trace_overhead": round(trace_overhead, 4),
    }
    path = write_bench_json("runtime", payload, update=True)

    emit("Runtime: telemetry overhead (12-config sweep, 48x48x20)", [
        format_row("mode", "wall s", "overhead", widths=[22, 10, 10]),
        format_row("off", f"{off_s:.3f}", "-", widths=[22, 10, 10]),
        format_row("metrics", f"{metrics_s:.3f}",
                   f"{metrics_overhead:+.1%}", widths=[22, 10, 10]),
        format_row("trace", f"{trace_s:.3f}",
                   f"{trace_overhead:+.1%}", widths=[22, 10, 10]),
        f"written: {path}",
    ])

    assert metrics_overhead < 0.05
