"""Figure 2: arithmetic power share of compute-intensive GPU benchmarks.

The preliminary study behind the whole thesis: FPU + SFU power is a large
share of total GPU power for compute-intensive Rodinia / ISPASS kernels
(~27-38%, up to >70% counting all arithmetic-adjacent consumers), while the
integer ALU draws under ~10%.  This bench regenerates the per-benchmark
component breakdown from the GPUWattch-substitute power model.
"""

import pytest

from repro.apps import cp, hotspot, raytrace, srad
from repro.gpu import GPUPowerModel

from report import emit

PAPER_ARITH_SHARE = {"hotspot": 0.35, "srad": 0.27, "raytracing": 0.28}


def _reference_runs():
    return {
        "hotspot": hotspot.reference_run(64, 64, 30),
        "srad": srad.reference_run(64, 64, 30),
        "raytracing": raytrace.reference_run(64, 64),
        "cp": cp.reference_run(grid=48),
    }


@pytest.fixture(scope="module")
def breakdowns():
    model = GPUPowerModel()
    return {name: model.breakdown(r.counters) for name, r in _reference_runs().items()}


def test_fig02_power_breakdown(benchmark, breakdowns):
    model = GPUPowerModel()
    hotspot_counters = hotspot.reference_run(64, 64, 30).counters
    benchmark(model.breakdown, hotspot_counters)

    lines = []
    for name, bd in breakdowns.items():
        paper = PAPER_ARITH_SHARE.get(name)
        paper_s = f"(paper ~{paper:.0%})" if paper else ""
        lines.append(
            f"{name:12s} FPU {bd.fpu_share:6.1%}  SFU {bd.sfu_share:6.1%}  "
            f"ALU {bd.share('ALU'):5.1%}  arith {bd.arithmetic_share:6.1%} {paper_s}"
        )
        benchmark.extra_info[f"{name}_arith_share"] = bd.arithmetic_share
    emit("Figure 2 — arithmetic power share per benchmark", lines)

    for name, bd in breakdowns.items():
        assert 0.15 <= bd.arithmetic_share <= 0.55
        assert bd.share("ALU") < 0.10  # integer unit under 10%


def test_fig02_component_rows(benchmark, breakdowns):
    bd = breakdowns["hotspot"]
    benchmark(lambda: bd.format_rows())
    emit("Figure 2 — HotSpot component detail", [bd.format_rows()])
    assert bd.total_w > 10
