"""Extensions: IHW x DVFS composition and the automatic multiplier tuner.

Two of the paper's closing claims made runnable:

- the abstract's "IHW is orthogonal to DVFS ... and can be combined": the
  composed power savings beat either knob alone and IHW's share carries to
  energy one-for-one (DVFS's does not — it stretches runtime);
- Chapter 6's "automatic quality tuning model": the auto-tuner finds the
  cheapest acceptable multiplier configuration for RayTracing in a handful
  of evaluations.
"""

from repro.apps import raytrace
from repro.core import IHWConfig
from repro.framework import PowerQualityFramework
from repro.gpu import DVFSPoint, combined_savings
from repro.quality import MultiplierAutoTuner, mae, ssim

from report import emit

SIZE = 64


def test_ext_dvfs_combination(benchmark):
    from repro.apps import hotspot

    fw = PowerQualityFramework(
        run_app=lambda cfg: hotspot.run(cfg, 64, 64, 30), quality_metric=mae
    )
    ev = fw.evaluate(IHWConfig.all_imprecise())
    ihw = ev.savings.system_savings

    def compose():
        return [combined_savings(ihw, DVFSPoint(f)) for f in (1.0, 0.9, 0.8, 0.7)]

    reports = benchmark(compose)
    lines = [r.format_row() for r in reports]
    emit("Extension — HotSpot IHW savings composed with DVFS", lines)
    benchmark.extra_info["combined_at_0.8"] = reports[2].power_savings

    nominal, *scaled = reports
    # At nominal frequency the combination is pure IHW with no slowdown.
    assert nominal.power_savings == ihw and nominal.runtime_scale == 1.0
    # Every scaled point beats IHW alone on power but costs runtime.
    for r in scaled:
        assert r.power_savings > ihw
        assert r.runtime_scale > 1.0
        # Energy savings sit between the power savings and IHW alone.
        assert ihw < r.energy_savings < r.power_savings


def test_ext_triple_composition_with_gating(benchmark):
    """IHW x power gating x DVFS: all three knobs of the abstract."""
    from repro.apps import hotspot
    from repro.gpu import GPUPowerModel, gated_breakdown, simulate_kernel

    fw = PowerQualityFramework(
        run_app=lambda cfg: hotspot.run(cfg, 64, 64, 30), quality_metric=mae
    )
    ev = fw.evaluate(IHWConfig.all_imprecise())
    ihw = ev.savings.system_savings

    def compose():
        model = GPUPowerModel()
        counters = fw.reference.counters
        timing = simulate_kernel(counters, model.config)
        base = model.breakdown(counters, timing)
        gated = gated_breakdown(counters, model=model, timing=timing)
        gating = 1 - gated.total_w / base.total_w
        steps = {
            "IHW alone": ihw,
            "+ power gating": 1 - (1 - ihw) * (1 - gating),
        }
        steps["+ DVFS f=0.85"] = 1 - (1 - steps["+ power gating"]) * DVFSPoint(
            0.85
        ).power_scale
        return steps

    steps = benchmark(compose)
    lines = [f"{name:16s} power savings {value:7.2%}" for name, value in steps.items()]
    emit("Extension — IHW x gating x DVFS on HotSpot", lines)
    benchmark.extra_info["triple"] = steps["+ DVFS f=0.85"]

    ordered = list(steps.values())
    assert ordered == sorted(ordered)  # each knob adds savings
    assert steps["+ DVFS f=0.85"] > 0.45  # the stacked total is substantial


def test_ext_autotuner_raytrace(benchmark):
    fw = PowerQualityFramework(
        run_app=lambda cfg: raytrace.run(cfg, SIZE, SIZE, depth=1),
        quality_metric=lambda out, ref: ssim(out, ref, data_range=1.0),
    )

    def tune():
        tuner = MultiplierAutoTuner(
            fw.quality_evaluator(), lambda q: q >= 0.8, max_truncation=22
        )
        return tuner.tune()

    result = benchmark(tune)
    emit(
        "Extension — automatic multiplier tuning (RayTracing, SSIM >= 0.8)",
        [
            f"selected: {result.multiplier.name if result.multiplier else 'precise'}",
            f"quality:  {result.quality:.3f}",
            f"power:    {result.power_mw:.3f} mW "
            f"(DWIP multiplier: 10.5 mW)",
            f"evaluations: {result.evaluations}",
        ],
    )
    benchmark.extra_info["evaluations"] = result.evaluations

    assert result.satisfied
    assert result.quality >= 0.8
    # Deep truncation found automatically, far cheaper than DWIP.
    assert result.multiplier.truncation >= 5
    assert result.power_mw < 2.0
    # Binary search, not exhaustive sweep.
    assert result.evaluations <= 14
