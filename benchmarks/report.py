"""Shared reporting helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints its
rows (paper value vs measured value) so that ``pytest benchmarks/
--benchmark-only -s`` produces the full evaluation report.  Key measured
values are also attached to the pytest-benchmark ``extra_info`` so they land
in saved benchmark JSON.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["emit", "format_row", "write_bench_json"]

REPO_ROOT = Path(__file__).resolve().parent.parent


def format_row(*cells, widths=None) -> str:
    widths = widths or [24] * len(cells)
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def emit(title: str, lines) -> None:
    """Print one experiment's report block (visible with ``-s``)."""
    bar = "=" * max(len(title), 40)
    out = [bar, title, bar]
    out.extend(str(line) for line in lines)
    print("\n" + "\n".join(out), file=sys.stderr)


def write_bench_json(name: str, payload: dict, update: bool = False) -> Path:
    """Write a ``BENCH_<name>.json`` tracking file at the repo root.

    These files are committed so successive PRs can see the performance
    trajectory (wall times, speedups, cache hit rates) without re-running
    the benchmark suite.  With ``update=True`` the payload is merged over
    the existing file instead of replacing it, so several benchmarks can
    contribute keys to one tracking file.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    if update and path.exists():
        payload = {**json.loads(path.read_text()), **payload}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
