"""Shared reporting helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints its
rows (paper value vs measured value) so that ``pytest benchmarks/
--benchmark-only -s`` produces the full evaluation report.  Key measured
values are also attached to the pytest-benchmark ``extra_info`` so they land
in saved benchmark JSON.
"""

from __future__ import annotations

import sys

__all__ = ["emit", "format_row"]


def format_row(*cells, widths=None) -> str:
    widths = widths or [24] * len(cells)
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def emit(title: str, lines) -> None:
    """Print one experiment's report block (visible with ``-s``)."""
    bar = "=" * max(len(title), 40)
    out = [bar, title, bar]
    out.extend(str(line) for line in lines)
    print("\n" + "\n".join(out), file=sys.stderr)
