"""Table 4: absolute PPA of the accuracy-configurable FP multiplier.

The paper's ICCD-context synthesis: DW fp32 multiplier 36.63 mW -> proposed
17.93 mW at the same latency (~2x), DW fp64 119.9 -> 38.17 mW (~3.1x), with
smaller area.  The structural model (minimum-latency context) must show the
same orderings: full-bitwidth full-path proposal cheaper than DWIP in power
and area at both precisions, with the fp64 ratio at least the fp32 ratio.
"""

from repro.core import MultiplierConfig
from repro.hardware import TABLE4_FP_MULTIPLIER, dw_fp_multiplier, mitchell_fp_multiplier

from report import emit


def test_table4_fp_multiplier_metrics(benchmark):
    def build():
        return {
            32: (dw_fp_multiplier(32).metrics(),
                 mitchell_fp_multiplier(32, MultiplierConfig("full", 0)).metrics()),
            64: (dw_fp_multiplier(64).metrics(),
                 mitchell_fp_multiplier(64, MultiplierConfig("full", 0)).metrics()),
        }

    designs = benchmark(build)

    lines = [
        f"{'configuration':24s} {'power mW':>9s} {'latency ns':>11s} {'area um2':>10s}"
    ]
    for name, ref in TABLE4_FP_MULTIPLIER.items():
        lines.append(
            f"paper {name:18s} {ref.power_mw:9.2f} {ref.latency_ns:11.2f} {ref.area:10.1f}"
        )
    for bits, (dw, ours) in designs.items():
        lines.append(
            f"model DW_fp_mult_{bits:<7d} {dw.power_mw:9.2f} {dw.latency_ns:11.2f} "
            f"{dw.area:10.1f}"
        )
        lines.append(
            f"model ifpmul{bits}_full     {ours.power_mw:9.2f} {ours.latency_ns:11.2f} "
            f"{ours.area:10.1f}"
        )
        benchmark.extra_info[f"fp{bits}_power_reduction"] = dw.power_mw / ours.power_mw
    emit("Table 4 — configurable FP multiplier PPA", lines)

    dw32, ours32 = designs[32]
    dw64, ours64 = designs[64]
    # Paper orderings: proposal wins power and area at both precisions...
    assert ours32.power_mw < dw32.power_mw
    assert ours64.power_mw < dw64.power_mw
    assert ours32.area < dw32.area
    assert ours64.area < dw64.area
    # ... is at least as fast ...
    assert ours32.latency_ns <= dw32.latency_ns
    assert ours64.latency_ns <= dw64.latency_ns
    # ... and saves relatively more at double precision (2.04x -> 3.14x).
    assert dw64.power_mw / ours64.power_mw >= dw32.power_mw / ours32.power_mw
    # Paper reference ratios for the record.
    paper32 = (
        TABLE4_FP_MULTIPLIER["DW_fp_mult_32"].power_mw
        / TABLE4_FP_MULTIPLIER["ifpmul32_same_latency"].power_mw
    )
    assert 1.9 <= paper32 <= 2.2
