"""Negative control: the application class the paper scopes OUT.

Chapter 1: financial models "require extremely high accuracies ... where a
small error would result in millions of dollars difference."  This bench
prices a 512-option book on every headline configuration and shows the
contrast that justifies the power-QUALITY (not power-performance) framing:
the same hardware that saves 30% on HotSpot at invisible quality cost
mis-prices options by hundreds to thousands of basis points.
"""

import numpy as np

from repro.apps import blackscholes as bs
from repro.core import IHWConfig

from report import emit

TOLERANCE_BPS = 1.0

CONFIGS = {
    "add only (TH=8)": IHWConfig.units("add"),
    "fp_tr0 mul only": IHWConfig.units("mul").with_multiplier(
        "mitchell", config="fp_tr0"
    ),
    "quadratic SFUs only": IHWConfig.units("rcp", "sqrt", "log2").with_sfu_mode(
        "quadratic"
    ),
    "all Table-1 units": IHWConfig.all_imprecise(),
}


def test_negative_control_finance(benchmark):
    reference = bs.reference_run()

    def run_all():
        return {name: bs.run(cfg) for name, cfg in CONFIGS.items()}

    results = benchmark(run_all)

    lines = [
        f"book: {len(reference.output)} European calls, "
        f"value ${reference.output.sum():,.0f}",
        f"tolerance: {TOLERANCE_BPS} bp",
        f"{'configuration':22s} {'median bps':>11s} {'max $/option':>13s}",
    ]
    bps = {}
    for name, result in results.items():
        err = np.abs(result.output - reference.output)
        median_bps = float(np.median(err / np.maximum(reference.output, 0.01) * 1e4))
        bps[name] = median_bps
        lines.append(f"{name:22s} {median_bps:11.1f} {err.max():13.4f}")
        benchmark.extra_info[f"{name}_bps"] = median_bps
    emit("Negative control — Black-Scholes repricing error", lines)

    # Every configuration fails the tolerance — imprecise hardware is an
    # application-selective technique.
    for name, value in bps.items():
        assert value > TOLERANCE_BPS, name
    # Severity ordering follows the units' error magnitudes.
    assert bps["all Table-1 units"] > bps["fp_tr0 mul only"] > bps["add only (TH=8)"]
