"""Ablation: CP's precise coordinate multiplications.

The paper keeps ~20% of CP's multiplications (grid coordinate computation)
on the precise datapath.  This ablation quantifies why: releasing them to
the imprecise multiplier displaces every distance computation coherently,
multiplying the field error severalfold for a marginal extra power saving.
"""

from repro.apps import cp
from repro.core import IHWConfig
from repro.quality import mae, wed

from report import emit

GRID = 48


def test_ablation_cp_precise_coordinates(benchmark):
    reference = cp.reference_run(grid=GRID)
    config = IHWConfig.units("mul", "rsqrt")

    def run_pair():
        pinned = cp.run(config, grid=GRID, precise_coordinates=True)
        released = cp.run(config, grid=GRID, precise_coordinates=False)
        return pinned, released

    pinned, released = benchmark(run_pair)

    mae_pinned = mae(pinned.output, reference.output)
    mae_released = mae(released.output, reference.output)
    frac_pinned = pinned.counters.precise_count("mul") / pinned.counters.op_count("mul")
    frac_released = (
        released.counters.precise_count("mul") / released.counters.op_count("mul")
    )
    emit(
        "Ablation — CP coordinate multiplications precise vs released",
        [
            f"{'variant':22s} {'MAE':>10s} {'WED':>10s} {'precise mul%':>13s}",
            f"{'pinned (paper)':22s} {mae_pinned:>10.5f} "
            f"{wed(pinned.output, reference.output):>10.5f} {frac_pinned:>12.0%}",
            f"{'released (ablation)':22s} {mae_released:>10.5f} "
            f"{wed(released.output, reference.output):>10.5f} {frac_released:>12.0%}",
            f"error amplification: {mae_released / mae_pinned:.2f}x",
        ],
    )
    benchmark.extra_info["amplification"] = mae_released / mae_pinned

    assert frac_pinned > 0.15 and frac_released == 0.0
    # Releasing the coordinates must hurt quality noticeably.
    assert mae_released > 1.5 * mae_pinned
